//! Soundness of the static pruning pre-pass.
//!
//! Pruning (`EngineConfig::preanalysis` / `Verifier::with_preanalysis`)
//! must be *observation-equivalent*: for every suite benchmark and every
//! Table 3 mode, the verdict, the reported-error set, and the completeness
//! flag are byte-identical with pruning on and off. The only permitted
//! differences are which subproblems actually ran (`AnalysisOutcome::Pruned`
//! rows with zero stats) and, consequently, the effort totals.

use hetsep_core::{
    AnalysisOutcome, Counter, EngineConfig, Mode, VerificationReport, Verifier, VerifyError,
};
use hetsep_strategy::parse_strategy;
use hetsep_suite::{Benchmark, TableMode};

/// The Table 3 budget (mirrors `hetsep::harness::table3_config`, which the
/// core crate cannot depend on).
fn budget() -> EngineConfig {
    EngineConfig {
        max_visits: 400_000,
        max_structures: 120_000,
        ..EngineConfig::default()
    }
}

fn core_mode(bench: &Benchmark, mode: TableMode) -> Result<Mode, VerifyError> {
    let parse =
        |src: &str| parse_strategy(src).map_err(|e| VerifyError::Strategy(e.to_string()));
    Ok(match mode {
        TableMode::Vanilla => Mode::Vanilla,
        TableMode::Single => Mode::separation(parse(bench.single_strategy)?),
        TableMode::Sim => Mode::simultaneous(parse(bench.single_strategy)?),
        TableMode::Multi => Mode::separation(parse(bench.multi_strategy.unwrap())?),
        TableMode::Inc => Mode::incremental(parse(bench.incremental_strategy.unwrap())?),
    })
}

fn run(bench: &Benchmark, mode: &Mode, preanalysis: bool) -> VerificationReport {
    let program = bench.program();
    let spec = bench.spec();
    Verifier::new(&program, &spec)
        .mode(mode.clone())
        .config(budget())
        .with_preanalysis(preanalysis)
        .run()
        .unwrap()
}

fn pruned_count(r: &VerificationReport) -> usize {
    r.subproblems
        .iter()
        .filter(|s| s.outcome == AnalysisOutcome::Pruned)
        .count()
}

/// The heart of the satellite: pruning never changes what is reported.
fn assert_equivalent(name: &str, mode_label: &str, off: &VerificationReport, on: &VerificationReport) {
    assert_eq!(
        format!("{:?}", off.errors),
        format!("{:?}", on.errors),
        "{name}/{mode_label}: error reports differ with pruning"
    );
    assert_eq!(
        off.verified(),
        on.verified(),
        "{name}/{mode_label}: verdict differs with pruning"
    );
    assert_eq!(
        off.complete, on.complete,
        "{name}/{mode_label}: complete flag differs with pruning"
    );
    assert_eq!(
        off.subproblems.len(),
        on.subproblems.len(),
        "{name}/{mode_label}: pruned rows must still appear as subproblems"
    );
    assert_eq!(pruned_count(off), 0, "{name}/{mode_label}: pruning leaked into the off run");
    // The counter and the outcome rows agree.
    assert_eq!(
        on.metrics.counters.get(Counter::SubproblemsPruned) as usize,
        pruned_count(on),
        "{name}/{mode_label}: subproblems_pruned counter out of sync"
    );
    // The preanalysis summary surfaces only on the pruned run, agrees with
    // the per-generation counters, and the pruned rows are exactly the
    // union of the two generations' safe sets (`|v1 ∪ v2|`).
    assert!(
        off.preanalysis.is_none(),
        "{name}/{mode_label}: summary leaked into the unpruned run"
    );
    if let Some(p) = on.preanalysis {
        assert_eq!(
            on.metrics.counters.get(Counter::PreanalysisPrunedBaseline),
            p.pruned_baseline,
            "{name}/{mode_label}: baseline-generation counter out of sync"
        );
        assert_eq!(
            on.metrics.counters.get(Counter::PreanalysisPrunedFlow),
            p.pruned_flow,
            "{name}/{mode_label}: flow-generation counter out of sync"
        );
        let pruned = pruned_count(on) as u64;
        assert!(
            pruned >= p.pruned_baseline.max(p.pruned_flow)
                && pruned <= p.pruned_baseline + p.pruned_flow,
            "{name}/{mode_label}: pruned rows are not the union of the generations ({p:?})"
        );
    }
    // Unpruned subproblems keep identical stats, in the same positions.
    for (o, n) in off.subproblems.iter().zip(&on.subproblems) {
        assert_eq!(o.site, n.site, "{name}/{mode_label}: site order changed");
        if n.outcome == AnalysisOutcome::Pruned {
            assert_eq!(n.errors, 0, "{name}/{mode_label}: pruned row reported errors");
            assert_eq!(n.stats.visits, 0, "{name}/{mode_label}: pruned row did work");
        } else {
            assert_eq!(
                o.stats.visits, n.stats.visits,
                "{name}/{mode_label}: unpruned subproblem's work changed"
            );
            assert_eq!(o.errors, n.errors, "{name}/{mode_label}: per-site errors changed");
        }
    }
}

/// Small hand-written programs covering the interesting pruning shapes:
/// all-safe (everything pruned), mixed (one suspect, one safe), heap-linked
/// components, and baseline false alarms (nothing pruned, engine verifies).
#[test]
fn pruning_is_observation_equivalent_on_scenarios() {
    let cases: &[(&str, &str, &str)] = &[
        (
            "all_safe",
            "program P uses IOStreams; void main() {\n\
             InputStream a = new InputStream();\n\
             InputStream b = new InputStream();\n\
             a.read();\n\
             a.close();\n\
             b.read();\n\
             b.close();\n}",
            hetsep_strategy::builtin::IOSTREAM_SINGLE,
        ),
        (
            "one_suspect_one_safe",
            "program P uses IOStreams; void main() {\n\
             InputStream a = new InputStream();\n\
             InputStream b = new InputStream();\n\
             a.close();\n\
             a.read();\n\
             b.read();\n\
             b.close();\n}",
            hetsep_strategy::builtin::IOSTREAM_SINGLE,
        ),
        (
            "loop_site_stays_suspect",
            "program P uses IOStreams; void main() {\n\
             while (?) {\n\
             File f = new File();\n\
             f.read();\n\
             f.close();\n\
             }\n}",
            hetsep_strategy::builtin::IOSTREAM_SINGLE,
        ),
        (
            "reassigned_handle",
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             f.read();\n\
             f.close();\n\
             f = new InputStream();\n\
             f.read();\n\
             f.close();\n}",
            hetsep_strategy::builtin::IOSTREAM_SINGLE,
        ),
        (
            "heap_linked_component",
            "program P uses JDBC; void main() {\n\
             ConnectionManager cm = new ConnectionManager();\n\
             Connection con = cm.getConnection();\n\
             Statement st = cm.createStatement(con);\n\
             ResultSet rs1 = st.executeQuery(\"a\");\n\
             ResultSet rs2 = st.executeQuery(\"b\");\n\
             while (rs1.next()) {\n\
             }\n}",
            hetsep_strategy::builtin::JDBC_SINGLE,
        ),
    ];
    for (name, src, strategy) in cases {
        let bench = Benchmark {
            name,
            description: "",
            source: (*src).to_owned(),
            single_strategy: strategy,
            multi_strategy: None,
            incremental_strategy: None,
            modes: vec![TableMode::Single],
            actual_errors: 0,
            expected_reported: vec![None],
        };
        let mode = core_mode(&bench, TableMode::Single).unwrap();
        let off = run(&bench, &mode, false);
        let on = run(&bench, &mode, true);
        assert_equivalent(name, "single", &off, &on);
    }
    // Spot-check the shapes actually exercise pruning both ways.
    let bench = Benchmark {
        name: "all_safe",
        description: "",
        source: cases[0].1.to_owned(),
        single_strategy: cases[0].2,
        multi_strategy: None,
        incremental_strategy: None,
        modes: vec![TableMode::Single],
        actual_errors: 0,
        expected_reported: vec![None],
    };
    let mode = core_mode(&bench, TableMode::Single).unwrap();
    let on = run(&bench, &mode, true);
    assert_eq!(pruned_count(&on), 2, "clean program: every site pruned");
    assert!(on.verified());
}

/// The second generation is strictly stronger than the first: the
/// reassigned handle's two allocation sites defeat the flow-insensitive
/// baseline (both flow into `f`, so a check on either implicates both) but
/// not the flow-sensitive analysis, which keeps the lifetimes apart and
/// prunes both subproblems.
#[test]
fn flow_generation_prunes_what_the_baseline_cannot() {
    let bench = Benchmark {
        name: "reassigned_handle",
        description: "",
        source: "program P uses IOStreams; void main() {\n\
                 InputStream f = new InputStream();\n\
                 f.read();\n\
                 f.close();\n\
                 f = new InputStream();\n\
                 f.read();\n\
                 f.close();\n}"
            .to_owned(),
        single_strategy: hetsep_strategy::builtin::IOSTREAM_SINGLE,
        multi_strategy: None,
        incremental_strategy: None,
        modes: vec![TableMode::Single],
        actual_errors: 0,
        expected_reported: vec![None],
    };
    let mode = core_mode(&bench, TableMode::Single).unwrap();
    let on = run(&bench, &mode, true);
    let p = on.preanalysis.expect("preanalysis ran");
    assert!(
        p.pruned_flow > p.pruned_baseline,
        "flow generation should win here: {p:?}"
    );
    assert_eq!(pruned_count(&on), 2, "both sites pruned: {p:?}");
    assert!(on.verified());
}

/// Every suite benchmark × every Table 3 mode. Expensive (the full table
/// twice) — release builds only, like the Table 3 shape tests.
#[test]
#[cfg_attr(debug_assertions, ignore)]
fn pruning_is_observation_equivalent_on_the_suite() {
    let mut total_pruned = 0usize;
    let (mut baseline_total, mut flow_total) = (0u64, 0u64);
    for bench in hetsep_suite::all() {
        for &table_mode in &bench.modes {
            let mode = core_mode(&bench, table_mode).unwrap();
            let off = run(&bench, &mode, false);
            let on = run(&bench, &mode, true);
            assert_equivalent(bench.name, table_mode.label(), &off, &on);
            total_pruned += pruned_count(&on);
            if let Some(p) = on.preanalysis {
                baseline_total += p.pruned_baseline;
                flow_total += p.pruned_flow;
            }
        }
    }
    assert!(
        total_pruned > 0,
        "the pre-pass should prune at least one subproblem somewhere in the suite"
    );
    // The v2 generation must earn its keep: across the suite it prunes
    // strictly more subproblems than the v1 baseline generation alone.
    assert!(
        flow_total > baseline_total,
        "flow generation ({flow_total}) should out-prune the baseline ({baseline_total})"
    );
}
