//! Strategy lints (`W111`–`W115`).
//!
//! | code | lint |
//! |------|------|
//! | W111 | a checked class the program instantiates is not covered by the strategy (Theorem 1 / `strategy::coverage`) |
//! | W112 | an `on failure` stage has a `failing` choice no earlier stage can feed |
//! | W113 | duplicate choice operation within a stage |
//! | W114 | dead `choose` clause: the program never instantiates its class |
//! | W115 | a `choose all` subsumed by a less-constrained earlier choice |
//!
//! W111 and W114 need the program (which classes are actually instantiated,
//! directly or through library factory methods) and the spec (which classes
//! carry `requires` checks); W112/W113/W115 are purely syntactic over the
//! strategy. Strategy sources carry no line information, so these
//! diagnostics use line 0 and name the stage/choice in the message.

use std::collections::{BTreeSet, HashSet};

use hetsep_easl::ast::{EaslCond, EaslStmt, Spec};
use hetsep_ir::cfg::{Cfg, CfgOp};
use hetsep_ir::diag::Diagnostic;
use hetsep_strategy::ast::Strategy;
use hetsep_strategy::coverage::{covered_classes, incremental_covers};

/// Runs all strategy lints. `cfg` must be built from the program the
/// strategy will verify, `spec` is the specification it runs against.
pub fn lint_strategy(strategy: &Strategy, cfg: &Cfg, spec: &Spec) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    uncovered_checked_classes(strategy, cfg, spec, &mut diags);
    unreachable_failing_stages(strategy, &mut diags);
    duplicate_choices(strategy, &mut diags);
    dead_choices(strategy, cfg, spec, &mut diags);
    subsumed_choices(strategy, &mut diags);
    diags
}

// ---------------------------------------------------------------- W111 ----

/// Classes whose objects carry `requires` checks: for every condition in a
/// `requires`, the classes owning the fields the condition reads.
pub(crate) fn checked_classes(spec: &Spec) -> BTreeSet<String> {
    let mut checked = BTreeSet::new();
    for class in &spec.classes {
        for method in std::iter::once(&class.ctor).chain(&class.methods) {
            // Roots resolve to: `this` → the class, parameters → their class.
            let type_of_root = |root: &str| -> Option<String> {
                if root == "this" {
                    Some(class.name.clone())
                } else {
                    method
                        .params
                        .iter()
                        .find(|(p, _)| p == root)
                        .map(|(_, c)| c.clone())
                }
            };
            walk_requires(&method.body, &mut |cond| {
                collect_cond_owners(cond, spec, &type_of_root, &mut checked)
            });
        }
    }
    checked
}

fn walk_requires(body: &[EaslStmt], f: &mut impl FnMut(&EaslCond)) {
    for stmt in body {
        match stmt {
            EaslStmt::Requires(cond) => f(cond),
            EaslStmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                walk_requires(then_branch, f);
                walk_requires(else_branch, f);
            }
            EaslStmt::Foreach { body, .. } => walk_requires(body, f),
            _ => {}
        }
    }
}

/// For every path the condition reads, records the class owning the *final*
/// field (resolving intermediate reference fields through the spec).
fn collect_cond_owners(
    cond: &EaslCond,
    spec: &Spec,
    type_of_root: &impl Fn(&str) -> Option<String>,
    out: &mut BTreeSet<String>,
) {
    let mut visit_path = |path: &hetsep_easl::ast::Path| {
        let Some(mut ty) = type_of_root(&path.root) else {
            return;
        };
        // Walk down to the owner of the last field.
        for field in path.fields.iter().take(path.fields.len().saturating_sub(1)) {
            let Some(class) = spec.class(&ty) else { return };
            match class.field(field) {
                Some(hetsep_easl::ast::FieldKind::Ref(next))
                | Some(hetsep_easl::ast::FieldKind::Set(next)) => ty = next.clone(),
                _ => return,
            }
        }
        if !path.fields.is_empty() && spec.class(&ty).is_some() {
            out.insert(ty);
        }
    };
    match cond {
        EaslCond::Read(p) | EaslCond::IsNull(p) | EaslCond::NotNull(p) => visit_path(p),
        EaslCond::Not(inner) => collect_cond_owners(inner, spec, type_of_root, out),
        EaslCond::And(a, b) => {
            collect_cond_owners(a, spec, type_of_root, out);
            collect_cond_owners(b, spec, type_of_root, out);
        }
    }
}

/// Spec classes the program can instantiate: direct `new C()` plus classes
/// allocated inside spec methods the program (transitively) calls.
pub(crate) fn instantiated_classes(cfg: &Cfg, spec: &Spec) -> BTreeSet<String> {
    let mut classes: BTreeSet<String> = BTreeSet::new();
    let mut worklist: Vec<(String, String)> = Vec::new(); // (class, method)
    let mut queued: HashSet<(String, String)> = HashSet::new();

    let enqueue_ctor =
        |c: &str, worklist: &mut Vec<(String, String)>, queued: &mut HashSet<(String, String)>| {
            if queued.insert((c.to_owned(), c.to_owned())) {
                worklist.push((c.to_owned(), c.to_owned()));
            }
        };

    for edge in cfg.edges() {
        match &edge.op {
            CfgOp::New { class, .. } if spec.class(class).is_some() => {
                classes.insert(class.clone());
                enqueue_ctor(class, &mut worklist, &mut queued);
            }
            CfgOp::CallLib { recv, method, .. } => {
                if let Some(ty) = cfg.var_type(recv) {
                    if spec.class(ty).is_some()
                        && queued.insert((ty.to_owned(), method.clone()))
                    {
                        worklist.push((ty.to_owned(), method.clone()));
                    }
                }
            }
            _ => {}
        }
    }

    while let Some((class, method)) = worklist.pop() {
        let Some(c) = spec.class(&class) else { continue };
        let m = if method == class {
            Some(&c.ctor)
        } else {
            c.method(&method)
        };
        let Some(m) = m else { continue };
        walk_allocs(&m.body, &mut |alloc_class: &str| {
            if spec.class(alloc_class).is_some() {
                classes.insert(alloc_class.to_owned());
                enqueue_ctor(alloc_class, &mut worklist, &mut queued);
            }
        });
    }
    classes
}

fn walk_allocs(body: &[EaslStmt], f: &mut impl FnMut(&str)) {
    for stmt in body {
        match stmt {
            EaslStmt::Alloc { class, .. } => f(class),
            EaslStmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                walk_allocs(then_branch, f);
                walk_allocs(else_branch, f);
            }
            EaslStmt::Foreach { body, .. } => walk_allocs(body, f),
            _ => {}
        }
    }
}

fn uncovered_checked_classes(
    strategy: &Strategy,
    cfg: &Cfg,
    spec: &Spec,
    diags: &mut Vec<Diagnostic>,
) {
    let checked = checked_classes(spec);
    let instantiated = instantiated_classes(cfg, spec);
    for class in checked.intersection(&instantiated) {
        let any_stage_covers = strategy
            .stages
            .iter()
            .any(|stage| covered_classes(stage).contains(class));
        if !any_stage_covers {
            diags.push(
                Diagnostic::warning(
                    "W111",
                    format!(
                        "class `{class}` has `requires` checks but no stage of strategy \
                         `{}` covers it",
                        strategy.name
                    ),
                    0,
                )
                .with_note(
                    "objects of this class are never verified; add an unconditioned \
                     choice or an equation chain per Theorem 1",
                ),
            );
        } else if strategy.is_incremental() && !incremental_covers(&strategy.stages, class) {
            diags.push(
                Diagnostic::warning(
                    "W111",
                    format!(
                        "class `{class}` is only partially covered by incremental strategy \
                         `{}`",
                        strategy.name
                    ),
                    0,
                )
                .with_note(
                    "under early-stop semantics a class must be covered by the first \
                     stage and re-examined by every later stage to keep full coverage",
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- W112 ----

fn unreachable_failing_stages(strategy: &Strategy, diags: &mut Vec<Diagnostic>) {
    for (k, stage) in strategy.stages.iter().enumerate() {
        for op in &stage.choices {
            if !op.failing {
                continue;
            }
            let fed = strategy.stages[..k]
                .iter()
                .any(|prev| prev.choices.iter().any(|p| p.class == op.class));
            if !fed {
                diags.push(
                    Diagnostic::warning(
                        "W112",
                        format!(
                            "`failing` choice on `{}` in stage {} of strategy `{}` can \
                             never match: no earlier stage chooses `{}`",
                            op.class, k, strategy.name, op.class
                        ),
                        0,
                    )
                    .with_note(
                        "a failing choice selects among sites that failed earlier \
                         stages; with none, the stage verifies vacuously",
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------- W113 ----

/// A choice's identity: mode, `failing`, class, sorted equations.
type ChoiceKey = (String, bool, String, Vec<(String, String)>);

fn duplicate_choices(strategy: &Strategy, diags: &mut Vec<Diagnostic>) {
    for (k, stage) in strategy.stages.iter().enumerate() {
        let mut seen: HashSet<ChoiceKey> = HashSet::new();
        for op in &stage.choices {
            let mut eqs = op.equations.clone();
            eqs.sort();
            let key = (op.mode.to_string(), op.failing, op.class.clone(), eqs);
            if !seen.insert(key) {
                diags.push(
                    Diagnostic::warning(
                        "W113",
                        format!(
                            "duplicate choice on class `{}` in stage {} of strategy `{}`",
                            op.class, k, strategy.name
                        ),
                        0,
                    )
                    .with_note("identical choices select the same objects; remove one"),
                );
            }
        }
    }
}

// ---------------------------------------------------------------- W114 ----

/// A choice on a spec class the program never instantiates selects from an
/// empty site family: the subproblem fan-out is vacuous and the clause is
/// dead weight (often a stale strategy after a program edit).
fn dead_choices(strategy: &Strategy, cfg: &Cfg, spec: &Spec, diags: &mut Vec<Diagnostic>) {
    let instantiated = instantiated_classes(cfg, spec);
    for (k, stage) in strategy.stages.iter().enumerate() {
        for op in &stage.choices {
            if spec.class(&op.class).is_some() && !instantiated.contains(&op.class) {
                diags.push(
                    Diagnostic::warning(
                        "W114",
                        format!(
                            "dead `choose` clause: class `{}` in stage {} of strategy \
                             `{}` is never instantiated by the program",
                            op.class, k, strategy.name
                        ),
                        0,
                    )
                    .with_note(
                        "no allocation site matches this choice, so it selects nothing; \
                         remove the clause or fix the class name",
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------- W115 ----

/// A `choose all` whose equations are a strict superset of an earlier
/// same-class `choose all` in the same stage selects a subset of what the
/// earlier choice already selects: every object it binds is already bound.
fn subsumed_choices(strategy: &Strategy, diags: &mut Vec<Diagnostic>) {
    use hetsep_strategy::ast::ChoiceMode;
    for (k, stage) in strategy.stages.iter().enumerate() {
        for (j, later) in stage.choices.iter().enumerate() {
            if later.mode != ChoiceMode::All {
                continue;
            }
            let later_eqs: HashSet<&(String, String)> = later.equations.iter().collect();
            let subsumed_by = stage.choices[..j].iter().find(|earlier| {
                earlier.mode == ChoiceMode::All
                    && earlier.failing == later.failing
                    && earlier.class == later.class
                    && earlier.equations.len() < later.equations.len()
                    && earlier.equations.iter().all(|eq| later_eqs.contains(eq))
            });
            if let Some(earlier) = subsumed_by {
                diags.push(
                    Diagnostic::warning(
                        "W115",
                        format!(
                            "choice `{later}` in stage {k} of strategy `{}` is subsumed \
                             by the earlier, less constrained `{earlier}`",
                            strategy.name
                        ),
                        0,
                    )
                    .with_note(
                        "`choose all` with fewer equations already selects every object \
                         the stricter choice can; remove the subsumed clause",
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsep_ir::parse_program;
    use hetsep_strategy::parse_strategy;

    fn jdbc_cfg(src: &str) -> Cfg {
        Cfg::build(&parse_program(src).unwrap(), "main").unwrap()
    }

    const JDBC_CLIENT: &str = "program P uses JDBC; void main() {\n\
        ConnectionManager cm = new ConnectionManager();\n\
        Connection con = cm.getConnection();\n\
        Statement st = cm.createStatement(con);\n\
        ResultSet rs = st.executeQuery(\"q\");\n\
        while (rs.next()) {\n\
        }\n}";

    #[test]
    fn checked_and_instantiated_classes_of_jdbc() {
        let spec = hetsep_easl::builtin::jdbc();
        let cfg = jdbc_cfg(JDBC_CLIENT);
        let checked = checked_classes(&spec);
        assert!(checked.contains("Connection"), "{checked:?}");
        assert!(checked.contains("Statement"));
        assert!(checked.contains("ResultSet"));
        let inst = instantiated_classes(&cfg, &spec);
        // Factory methods allocate Connection/Statement/ResultSet even
        // though the program only `new`s the manager.
        assert!(inst.contains("ConnectionManager"), "{inst:?}");
        assert!(inst.contains("Connection"), "{inst:?}");
        assert!(inst.contains("Statement"));
        assert!(inst.contains("ResultSet"));
    }

    #[test]
    fn w111_fires_when_a_checked_class_is_uncovered() {
        let spec = hetsep_easl::builtin::jdbc();
        let cfg = jdbc_cfg(JDBC_CLIENT);
        let s = parse_strategy(
            "strategy OnlyConnections {\n\
             choose some c : Connection();\n}",
        )
        .unwrap();
        let d = lint_strategy(&s, &cfg, &spec);
        let w111: Vec<_> = d.iter().filter(|x| x.code == "W111").collect();
        assert_eq!(w111.len(), 2, "{d:?}");
        assert!(w111.iter().any(|x| x.message.contains("`Statement`")));
        assert!(w111.iter().any(|x| x.message.contains("`ResultSet`")));
    }

    #[test]
    fn w111_quiet_on_builtin_single_strategy() {
        let spec = hetsep_easl::builtin::jdbc();
        let cfg = jdbc_cfg(JDBC_CLIENT);
        let s = parse_strategy(hetsep_strategy::builtin::JDBC_SINGLE).unwrap();
        let d = lint_strategy(&s, &cfg, &spec);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn w111_notes_partial_incremental_coverage() {
        let spec = hetsep_easl::builtin::jdbc();
        let cfg = jdbc_cfg(JDBC_CLIENT);
        let s = parse_strategy(hetsep_strategy::builtin::JDBC_INCREMENTAL).unwrap();
        let d = lint_strategy(&s, &cfg, &spec);
        // Statement and Connection are covered only by later stages: the
        // paper's deliberate scaling trade-off, surfaced as a warning.
        let partial: Vec<_> = d
            .iter()
            .filter(|x| x.message.contains("partially covered"))
            .collect();
        assert_eq!(partial.len(), 2, "{d:?}");
    }

    #[test]
    fn w112_fires_on_unfed_failing_choice() {
        let s = parse_strategy(
            "strategy S {\n\
             choose some c : Connection();\n}\n\
             on failure {\n\
             choose some failing r : ResultSet(y);\n}",
        )
        .unwrap();
        let mut d = Vec::new();
        unreachable_failing_stages(&s, &mut d);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("never match"), "{d:?}");
    }

    #[test]
    fn w112_quiet_when_fed_by_earlier_stage() {
        let s = parse_strategy(hetsep_strategy::builtin::JDBC_INCREMENTAL).unwrap();
        let mut d = Vec::new();
        unreachable_failing_stages(&s, &mut d);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn w113_fires_on_duplicate_choice() {
        let s = parse_strategy(
            "strategy S {\n\
             choose some c : Connection();\n\
             choose some d : Connection();\n}",
        )
        .unwrap();
        let mut d = Vec::new();
        duplicate_choices(&s, &mut d);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "W113");
    }

    #[test]
    fn w114_fires_on_never_instantiated_choice_class() {
        let spec = hetsep_easl::builtin::jdbc();
        // Only the manager and a connection exist; no statement, no results.
        let cfg = jdbc_cfg(
            "program P uses JDBC; void main() {\n\
             ConnectionManager cm = new ConnectionManager();\n\
             Connection con = cm.getConnection();\n\
             con.close();\n}",
        );
        let s = parse_strategy(
            "strategy S {\n\
             choose some c : Connection();\n\
             choose some r : ResultSet();\n}",
        )
        .unwrap();
        let mut d = Vec::new();
        dead_choices(&s, &cfg, &spec, &mut d);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "W114");
        assert!(d[0].message.contains("`ResultSet`"), "{d:?}");
    }

    #[test]
    fn w114_quiet_when_factory_methods_instantiate_the_class() {
        let spec = hetsep_easl::builtin::jdbc();
        let cfg = jdbc_cfg(JDBC_CLIENT);
        let s = parse_strategy(hetsep_strategy::builtin::JDBC_SINGLE).unwrap();
        let mut d = Vec::new();
        dead_choices(&s, &cfg, &spec, &mut d);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn w115_fires_on_subsumed_all_choice() {
        let s = parse_strategy(
            "strategy S {\n\
             choose some c : Connection();\n\
             choose all s : Statement(x);\n\
             choose all t : Statement(x) / x == c;\n}",
        )
        .unwrap();
        let mut d = Vec::new();
        subsumed_choices(&s, &mut d);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "W115");
        assert!(d[0].message.contains("subsumed"), "{d:?}");
    }

    #[test]
    fn w115_quiet_on_some_mode_and_distinct_classes() {
        // `choose some` picks at most one object, so a stricter later
        // `some` is a genuine refinement; and the builtin strategies chain
        // distinct classes.
        let s = parse_strategy(
            "strategy S {\n\
             choose some c : Connection();\n\
             choose some s : Statement(x);\n\
             choose some t : Statement(x) / x == c;\n}",
        )
        .unwrap();
        let mut d = Vec::new();
        subsumed_choices(&s, &mut d);
        assert!(d.is_empty(), "{d:?}");
        let builtin = parse_strategy(hetsep_strategy::builtin::JDBC_SINGLE).unwrap();
        let mut d = Vec::new();
        subsumed_choices(&builtin, &mut d);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn w113_distinguishes_modes_and_equations() {
        let s = parse_strategy(
            "strategy S {\n\
             choose some c : Connection();\n\
             choose all s : Statement(x) / x == c;\n\
             choose some t : Statement(x);\n}",
        )
        .unwrap();
        let mut d = Vec::new();
        duplicate_choices(&s, &mut d);
        assert!(d.is_empty(), "{d:?}");
    }
}
