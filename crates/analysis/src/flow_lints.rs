//! Flow-sensitive lints (`W105`–`W106`), the second generation of program
//! lints built on the v2 preanalysis ([`crate::points_to_flow`]).
//!
//! | code | lint |
//! |------|------|
//! | W105 | checked call whose receiver is definitely in the wrong typestate |
//! | W106 | tracked reference escapes into a field nothing ever reads back |
//!
//! Both need the specification (W106 also the strategy), so they run only
//! when the user supplies one — unlike `W101`–`W104` they reason about
//! typestate, not just control and data flow:
//!
//! * W105 replays the flow analysis's verdicts: a call site lands here when
//!   a `requires` clause of the called method evaluates to *definitely
//!   false* on the converged facts — every execution path reaching the call
//!   has the receiver in a violating state, so this is the static analogue
//!   of the engine's "error" (vs. "possible error") verdict.
//! * W106 flags a store of a strategy-tracked object into a program-local
//!   record field that no load ever reads back. The alias is invisible to
//!   every lint and to the human reader; if it was meant to keep the object
//!   alive or hand it off, nothing ever observes it. Fields that are read
//!   somewhere (the holder-list idiom of the benchmark suite) stay quiet.

use std::collections::BTreeSet;

use hetsep_easl::ast::Spec;
use hetsep_ir::cfg::{Cfg, CfgOp};
use hetsep_ir::diag::Diagnostic;
use hetsep_strategy::ast::Strategy;
use hetsep_strategy::coverage::covered_classes;

use crate::points_to_flow::analyze_flow;

/// Strips the `proc@N::` inline-frame prefix from a CFG variable name.
fn display_name(var: &str) -> &str {
    var.rsplit("::").next().unwrap_or(var)
}

// ---------------------------------------------------------------- W105 ----

/// Runs the flow-sensitive typestate lint. `cfg` must be built from the
/// program at `main`; `spec` is the specification whose `requires` clauses
/// are judged. Quiet when the flow analysis declines (e.g. an unmodelled
/// library member) — a lint must not guess.
pub fn lint_flow(cfg: &Cfg, spec: &Spec) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let Ok(verdicts) = analyze_flow(cfg, spec) else {
        return diags;
    };
    for f in &verdicts.definite_failures {
        let name = display_name(&f.recv).to_owned();
        diags.push(
            Diagnostic::warning(
                "W105",
                format!(
                    "call to `{}` on `{name}`: the `{}` receiver is definitely in the \
                     wrong typestate here",
                    f.method, f.class,
                ),
                f.line,
            )
            .with_snippet(name)
            .with_note(
                "a `requires` clause of this method fails on every execution path \
                 reaching the call",
            ),
        );
    }
    diags
}

// ---------------------------------------------------------------- W106 ----

/// Runs the escaping-reference lint: a store of an object of a class some
/// stage of `strategy` tracks into a field of a program-local record that
/// no load anywhere reads back.
pub fn lint_escapes(cfg: &Cfg, spec: &Spec, strategy: &Strategy) -> Vec<Diagnostic> {
    let tracked: BTreeSet<String> = strategy
        .stages
        .iter()
        .flat_map(covered_classes)
        .collect();
    if tracked.is_empty() {
        return Vec::new();
    }
    // (record class, field) pairs some load reads back.
    let mut read_back: BTreeSet<(String, String)> = BTreeSet::new();
    for edge in cfg.edges() {
        if let CfgOp::LoadField { src, field, .. } = &edge.op {
            if let Some(ty) = cfg.var_type(src) {
                read_back.insert((ty.to_owned(), field.clone()));
            }
        }
    }
    let mut diags = Vec::new();
    let mut seen: BTreeSet<(u32, String, String)> = BTreeSet::new();
    for edge in cfg.edges() {
        let CfgOp::StoreField {
            dst,
            field,
            src: Some(src),
        } = &edge.op
        else {
            continue;
        };
        let Some(src_ty) = cfg.var_type(src) else {
            continue;
        };
        if !tracked.contains(src_ty) {
            continue;
        }
        // Stores into spec-class fields are modelled by the abstraction
        // itself; only program-local records can hide an alias.
        let Some(dst_ty) = cfg.var_type(dst) else {
            continue;
        };
        if spec.class(dst_ty).is_some() || read_back.contains(&(dst_ty.to_owned(), field.clone()))
        {
            continue;
        }
        let name = display_name(src).to_owned();
        if seen.insert((edge.line, name.clone(), field.clone())) {
            diags.push(
                Diagnostic::warning(
                    "W106",
                    format!(
                        "reference to tracked `{src_ty}` object `{name}` escapes into \
                         field `{field}` of `{dst_ty}`, which nothing ever reads back",
                    ),
                    edge.line,
                )
                .with_snippet(name)
                .with_note(
                    "the separation strategy tracks this object, but the alias stored \
                     here is never observed; remove the store or read the field",
                ),
            );
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsep_easl::builtin;
    use hetsep_ir::parse_program;
    use hetsep_strategy::parse_strategy;

    fn cfg_of(src: &str) -> Cfg {
        Cfg::build(&parse_program(src).unwrap(), "main").unwrap()
    }

    const STREAM_STRATEGY: &str = "strategy S { choose some f : InputStream(); }";

    #[test]
    fn w105_fires_on_definite_read_after_close() {
        let cfg = cfg_of(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             f.close();\n\
             f.read();\n}",
        );
        let d = lint_flow(&cfg, &builtin::iostreams());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "W105");
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("`read`"), "{d:?}");
        assert!(d[0].message.contains("`f`"), "{d:?}");
    }

    #[test]
    fn w105_quiet_on_branch_dependent_state() {
        // On one path the stream is still open: possible, not definite —
        // the engine's verification is the right tool, not a lint.
        let cfg = cfg_of(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             if (?) { f.close(); }\n\
             f.read();\n}",
        );
        let d = lint_flow(&cfg, &builtin::iostreams());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn w105_quiet_on_clean_program() {
        let cfg = cfg_of(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             f.read();\n\
             f.close();\n}",
        );
        let d = lint_flow(&cfg, &builtin::iostreams());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn w106_fires_on_never_read_escape() {
        let cfg = cfg_of(
            "program P uses IOStreams;\n\
             class Stash { InputStream kept; }\n\
             void main() {\n\
             Stash b = new Stash();\n\
             InputStream f = new InputStream();\n\
             b.kept = f;\n\
             f.read();\n\
             f.close();\n}",
        );
        let strategy = parse_strategy(STREAM_STRATEGY).unwrap();
        let d = lint_escapes(&cfg, &builtin::iostreams(), &strategy);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "W106");
        assert_eq!(d[0].line, 6);
        assert!(d[0].message.contains("`kept`"), "{d:?}");
    }

    #[test]
    fn w106_quiet_when_the_field_is_read_back() {
        // The benchmark suite's holder-list idiom: streams stored in heap
        // records and traversed later must stay quiet.
        let cfg = cfg_of(
            "program P uses IOStreams;\n\
             class Holder { InputStream s; }\n\
             void main() {\n\
             Holder h = new Holder();\n\
             InputStream f = new InputStream();\n\
             h.s = f;\n\
             InputStream g = h.s;\n\
             g.read();\n\
             g.close();\n}",
        );
        let strategy = parse_strategy(STREAM_STRATEGY).unwrap();
        let d = lint_escapes(&cfg, &builtin::iostreams(), &strategy);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn w106_quiet_for_untracked_classes() {
        // The strategy tracks nothing of class Holder; storing holders
        // around is not this lint's business.
        let cfg = cfg_of(
            "program P uses IOStreams;\n\
             class Holder { Holder next; }\n\
             void main() {\n\
             Holder a = new Holder();\n\
             Holder b = new Holder();\n\
             a.next = b;\n}",
        );
        let strategy = parse_strategy(STREAM_STRATEGY).unwrap();
        let d = lint_escapes(&cfg, &builtin::iostreams(), &strategy);
        assert!(d.is_empty(), "{d:?}");
    }
}
