//! Generic monotone dataflow over the IR control-flow graph.
//!
//! A [`DataflowProblem`] supplies the lattice (via `join`), the transfer
//! function over CFG edges, the analysis [`Direction`], and the boundary
//! fact; [`solve`] runs a deterministic worklist to the least fixpoint and
//! returns the per-node facts.
//!
//! Facts are attached to *nodes*; transfer functions run over *edges*
//! (every primitive operation labels an edge in `hetsep-ir`'s CFG). A node
//! that the analysis never reaches keeps `None` — for a forward problem
//! that means the node is unreachable from the entry, which the lint passes
//! exploit directly.
//!
//! The framework is intentionally small: lattices are encoded in the fact
//! type plus `join`, and monotonicity is the caller's obligation (as in any
//! classic Kildall-style solver). Termination requires the usual
//! finite-ascending-chain condition.

use std::collections::VecDeque;

use hetsep_ir::cfg::{Cfg, CfgEdge};

/// Direction of propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry along edges (`from` → `to`).
    Forward,
    /// Facts flow from the exit against edges (`to` → `from`).
    Backward,
}

/// A monotone dataflow problem over the CFG.
pub trait DataflowProblem {
    /// The lattice element. `join` must be monotone and idempotent, and the
    /// lattice must have finite height for [`solve`] to terminate.
    type Fact: Clone + PartialEq;

    /// Propagation direction.
    fn direction(&self) -> Direction;

    /// Fact at the boundary node (entry for forward, exit for backward).
    fn boundary(&self) -> Self::Fact;

    /// Transfer across one edge: the input is the fact at the edge's source
    /// (forward) or target (backward).
    fn transfer(&self, edge: &CfgEdge, fact: &Self::Fact) -> Self::Fact;

    /// Joins `from` into `into`; returns whether `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;
}

/// Per-node fixpoint facts. `None` means the analysis never reached the
/// node (unreachable from the boundary in the analysis direction).
#[derive(Debug, Clone)]
pub struct Solution<F> {
    facts: Vec<Option<F>>,
}

impl<F> Solution<F> {
    /// Fact at `node`, or `None` when unreachable.
    pub fn at(&self, node: usize) -> Option<&F> {
        self.facts.get(node).and_then(Option::as_ref)
    }

    /// Whether the analysis reached `node`.
    pub fn reached(&self, node: usize) -> bool {
        self.at(node).is_some()
    }
}

/// Runs the worklist solver to the least fixpoint.
pub fn solve<P: DataflowProblem>(cfg: &Cfg, problem: &P) -> Solution<P::Fact> {
    let n = cfg.node_count();
    let mut facts: Vec<Option<P::Fact>> = (0..n).map(|_| None).collect();
    if n == 0 {
        return Solution { facts };
    }

    // Edge indices grouped by the node whose fact feeds them.
    let mut fed_by: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ix, edge) in cfg.edges().iter().enumerate() {
        match problem.direction() {
            Direction::Forward => fed_by[edge.from].push(ix),
            Direction::Backward => fed_by[edge.to].push(ix),
        }
    }

    let start = match problem.direction() {
        Direction::Forward => cfg.entry(),
        Direction::Backward => cfg.exit(),
    };
    facts[start] = Some(problem.boundary());

    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut queued = vec![false; n];
    queue.push_back(start);
    queued[start] = true;

    while let Some(node) = queue.pop_front() {
        queued[node] = false;
        let Some(fact) = facts[node].clone() else {
            continue;
        };
        for &eix in &fed_by[node] {
            let edge = &cfg.edges()[eix];
            let out = problem.transfer(edge, &fact);
            let dst = match problem.direction() {
                Direction::Forward => edge.to,
                Direction::Backward => edge.from,
            };
            let changed = match &mut facts[dst] {
                Some(existing) => problem.join(existing, &out),
                slot @ None => {
                    *slot = Some(out);
                    true
                }
            };
            if changed && !queued[dst] {
                queue.push_back(dst);
                queued[dst] = true;
            }
        }
    }
    Solution { facts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsep_ir::cfg::CfgOp;
    use hetsep_ir::parse_program;
    use std::collections::BTreeSet;

    fn build(src: &str) -> Cfg {
        Cfg::build(&parse_program(src).unwrap(), "main").unwrap()
    }

    /// Forward "defined variables" analysis: which reference variables have
    /// been assigned on every path (set intersection at joins would be
    /// must-analysis; this test uses may-union for simplicity).
    struct DefinedVars;
    impl DataflowProblem for DefinedVars {
        type Fact = BTreeSet<String>;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self) -> Self::Fact {
            BTreeSet::new()
        }
        fn transfer(&self, edge: &CfgEdge, fact: &Self::Fact) -> Self::Fact {
            let mut out = fact.clone();
            match &edge.op {
                CfgOp::AssignNull { dst }
                | CfgOp::AssignVar { dst, .. }
                | CfgOp::New { dst: Some(dst), .. } => {
                    out.insert(dst.clone());
                }
                _ => {}
            }
            out
        }
        fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
            let before = into.len();
            into.extend(from.iter().cloned());
            into.len() != before
        }
    }

    #[test]
    fn forward_fixpoint_reaches_exit() {
        let cfg = build(
            "program P uses X; void main() {\n\
             InputStream a = new InputStream();\n\
             while (?) {\n\
             InputStream b = new InputStream();\n\
             }\n}",
        );
        let sol = solve(&cfg, &DefinedVars);
        let at_exit = sol.at(cfg.exit()).expect("exit reachable");
        assert!(at_exit.contains("a"));
        assert!(at_exit.contains("b"), "loop body var joined in");
    }

    /// Backward reachability-of-exit: the unit lattice.
    struct ReachesExit;
    impl DataflowProblem for ReachesExit {
        type Fact = ();
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn boundary(&self) -> Self::Fact {}
        fn transfer(&self, _: &CfgEdge, _: &Self::Fact) -> Self::Fact {}
        fn join(&self, _: &mut Self::Fact, _: &Self::Fact) -> bool {
            false
        }
    }

    #[test]
    fn backward_propagation_reaches_entry() {
        let cfg = build(
            "program P uses X; void main() {\n\
             InputStream a = new InputStream();\n\
             a.read();\n}",
        );
        let sol = solve(&cfg, &ReachesExit);
        assert!(sol.reached(cfg.entry()));
        assert!(sol.reached(cfg.exit()));
    }

    #[test]
    fn loops_terminate_at_fixpoint() {
        let cfg = build(
            "program P uses X; void main() {\n\
             InputStream a = new InputStream();\n\
             while (?) {\n\
             a = new InputStream();\n\
             }\n\
             a.read();\n}",
        );
        // Both directions terminate and reach their far boundary.
        assert!(solve(&cfg, &DefinedVars).reached(cfg.exit()));
        assert!(solve(&cfg, &ReachesExit).reached(cfg.entry()));
    }
}
