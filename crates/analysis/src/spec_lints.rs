//! Spec lints (`W121`–`W123`).
//!
//! | code | lint |
//! |------|------|
//! | W121 | a declared field is never referenced by any method body |
//! | W122 | a `requires` clause no program statement can trigger |
//! | W123 | a typestate transition the program can never exercise |
//!
//! Both lints relate a specification to the program under verification, so
//! they only run when the user supplies a spec explicitly (`hetsep lint
//! --spec`); the built-in specifications are treated as a trusted standard
//! library and deliberately model more methods than any one benchmark
//! calls. Easl sources carry no line information, so diagnostics use line 0
//! and name the class/field/method in the message.

use std::collections::BTreeSet;

use hetsep_easl::ast::{EaslCond, EaslStmt, Path, ReturnValue, Spec};
use hetsep_ir::cfg::{Cfg, CfgOp};
use hetsep_ir::diag::Diagnostic;

/// Runs all spec lints against the program's CFG.
pub fn lint_spec(spec: &Spec, cfg: &Cfg) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    unreferenced_fields(spec, &mut diags);
    untriggerable_requires(spec, cfg, &mut diags);
    unreachable_transitions(spec, cfg, &mut diags);
    diags
}

// ---------------------------------------------------------------- W121 ----

fn unreferenced_fields(spec: &Spec, diags: &mut Vec<Diagnostic>) {
    // Field names referenced anywhere in the spec (path segments included).
    // Name-level matching deliberately conflates same-named fields across
    // classes: a false negative is preferable to a false alarm here.
    let mut referenced: BTreeSet<&str> = BTreeSet::new();
    for class in &spec.classes {
        for method in std::iter::once(&class.ctor).chain(&class.methods) {
            collect_field_refs(&method.body, &mut referenced);
        }
    }
    for class in &spec.classes {
        for (field, _) in &class.fields {
            if !referenced.contains(field.as_str()) {
                diags.push(
                    Diagnostic::warning(
                        "W121",
                        format!(
                            "field `{field}` of class `{}` is declared but never referenced",
                            class.name
                        ),
                        0,
                    )
                    .with_note("no method reads, writes, or iterates this field"),
                );
            }
        }
    }
}

fn path_refs<'a>(path: &'a Path, out: &mut BTreeSet<&'a str>) {
    for f in &path.fields {
        out.insert(f);
    }
}

fn cond_refs<'a>(cond: &'a EaslCond, out: &mut BTreeSet<&'a str>) {
    match cond {
        EaslCond::Read(p) | EaslCond::IsNull(p) | EaslCond::NotNull(p) => path_refs(p, out),
        EaslCond::Not(inner) => cond_refs(inner, out),
        EaslCond::And(a, b) => {
            cond_refs(a, out);
            cond_refs(b, out);
        }
    }
}

fn collect_field_refs<'a>(body: &'a [EaslStmt], out: &mut BTreeSet<&'a str>) {
    use hetsep_easl::ast::{BoolRhs, RefRhs};
    for stmt in body {
        match stmt {
            EaslStmt::Requires(cond) => cond_refs(cond, out),
            EaslStmt::AssignBool { target, field, value } => {
                path_refs(target, out);
                out.insert(field);
                if let BoolRhs::Read(p) = value {
                    path_refs(p, out);
                }
            }
            EaslStmt::AssignRef { target, field, value } => {
                path_refs(target, out);
                out.insert(field);
                if let RefRhs::Path(p) = value {
                    path_refs(p, out);
                }
            }
            EaslStmt::SetClear { target, field } => {
                path_refs(target, out);
                out.insert(field);
            }
            EaslStmt::SetAdd { target, field, elem } => {
                path_refs(target, out);
                out.insert(field);
                path_refs(elem, out);
            }
            EaslStmt::Alloc { args, .. } => {
                for a in args {
                    path_refs(a, out);
                }
            }
            EaslStmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                cond_refs(cond, out);
                collect_field_refs(then_branch, out);
                collect_field_refs(else_branch, out);
            }
            EaslStmt::Foreach {
                target,
                field,
                body,
                ..
            } => {
                path_refs(target, out);
                out.insert(field);
                collect_field_refs(body, out);
            }
            EaslStmt::Return(Some(ReturnValue::Path(p))) => path_refs(p, out),
            EaslStmt::Return(_) => {}
        }
    }
}

// ---------------------------------------------------------------- W122 ----

/// The `(class, method)` pairs the program can trigger: direct library
/// calls, direct `new`, and constructors run by allocations inside
/// triggered methods (transitively). Constructors are keyed as
/// `(class, class)`. Shared by W122 and W123.
fn triggered_methods(spec: &Spec, cfg: &Cfg) -> BTreeSet<(String, String)> {
    let mut triggered: BTreeSet<(String, String)> = BTreeSet::new();
    let mut worklist: Vec<(String, String)> = Vec::new();
    let push = |class: &str,
                    method: &str,
                    triggered: &mut BTreeSet<(String, String)>,
                    worklist: &mut Vec<(String, String)>| {
        if spec.class(class).is_some()
            && triggered.insert((class.to_owned(), method.to_owned()))
        {
            worklist.push((class.to_owned(), method.to_owned()));
        }
    };
    for edge in cfg.edges() {
        match &edge.op {
            CfgOp::New { class, .. } => push(class, class, &mut triggered, &mut worklist),
            CfgOp::CallLib { recv, method, .. } => {
                if let Some(ty) = cfg.var_type(recv) {
                    let ty = ty.to_owned();
                    push(&ty, method, &mut triggered, &mut worklist);
                }
            }
            _ => {}
        }
    }
    while let Some((class, method)) = worklist.pop() {
        let Some(c) = spec.class(&class) else { continue };
        let m = if method == class {
            Some(&c.ctor)
        } else {
            c.method(&method)
        };
        let Some(m) = m else { continue };
        let mut allocs = Vec::new();
        collect_allocs(&m.body, &mut allocs);
        for a in allocs {
            push(&a, &a, &mut triggered, &mut worklist);
        }
    }
    triggered
}

fn untriggerable_requires(spec: &Spec, cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    let triggered = triggered_methods(spec, cfg);
    for class in &spec.classes {
        for method in std::iter::once(&class.ctor).chain(&class.methods) {
            if !has_requires(&method.body) {
                continue;
            }
            if !triggered.contains(&(class.name.clone(), method.name.clone())) {
                diags.push(
                    Diagnostic::warning(
                        "W122",
                        format!(
                            "`requires` clause of `{}.{}` can never be triggered: the \
                             program never calls it",
                            class.name, method.name
                        ),
                        0,
                    )
                    .with_note("the check is dead weight for this program"),
                );
            }
        }
    }
}

// ---------------------------------------------------------------- W123 ----

fn unreachable_transitions(spec: &Spec, cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    // A method that unconditionally drives the typestate (a constant
    // boolean assignment) but is never called by the program leaves part of
    // the state machine unreachable — the verifier will explore states the
    // program can never produce. Only reported for classes the program does
    // instantiate: a wholly unused class is not a state-machine gap, and
    // methods with a `requires` are already W122's business.
    let triggered = triggered_methods(spec, cfg);
    for class in &spec.classes {
        if !triggered.contains(&(class.name.clone(), class.name.clone())) {
            continue;
        }
        for method in &class.methods {
            if has_requires(&method.body) || !has_const_transition(&method.body) {
                continue;
            }
            if !triggered.contains(&(class.name.clone(), method.name.clone())) {
                diags.push(
                    Diagnostic::warning(
                        "W123",
                        format!(
                            "typestate transition in `{}.{}` is unreachable: the class is \
                             instantiated but the method is never called",
                            class.name, method.name
                        ),
                        0,
                    )
                    .with_note(
                        "the verifier still explores the states this transition produces",
                    ),
                );
            }
        }
    }
}

/// Does the body assign a constant boolean to some field (a typestate
/// transition the method performs unconditionally of the heap)?
fn has_const_transition(body: &[EaslStmt]) -> bool {
    use hetsep_easl::ast::BoolRhs;
    body.iter().any(|s| match s {
        EaslStmt::AssignBool {
            value: BoolRhs::Const(_),
            ..
        } => true,
        EaslStmt::If {
            then_branch,
            else_branch,
            ..
        } => has_const_transition(then_branch) || has_const_transition(else_branch),
        EaslStmt::Foreach { body, .. } => has_const_transition(body),
        _ => false,
    })
}

fn collect_allocs(body: &[EaslStmt], out: &mut Vec<String>) {
    for stmt in body {
        match stmt {
            EaslStmt::Alloc { class, .. } => out.push(class.clone()),
            EaslStmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_allocs(then_branch, out);
                collect_allocs(else_branch, out);
            }
            EaslStmt::Foreach { body, .. } => collect_allocs(body, out),
            _ => {}
        }
    }
}

fn has_requires(body: &[EaslStmt]) -> bool {
    body.iter().any(|s| match s {
        EaslStmt::Requires(_) => true,
        EaslStmt::If {
            then_branch,
            else_branch,
            ..
        } => has_requires(then_branch) || has_requires(else_branch),
        EaslStmt::Foreach { body, .. } => has_requires(body),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsep_easl::parse_spec;
    use hetsep_ir::parse_program;

    fn cfg_of(src: &str) -> Cfg {
        Cfg::build(&parse_program(src).unwrap(), "main").unwrap()
    }

    #[test]
    fn w121_fires_on_never_referenced_field() {
        let spec = parse_spec(
            "spec S;\n\
             class Gizmo {\n\
             boolean closed;\n\
             boolean ghost;\n\
             Gizmo() { this.closed = false; }\n\
             void close() { this.closed = true; }\n\
             }",
        )
        .unwrap();
        let cfg = cfg_of("program P uses S; void main() { Gizmo g = new Gizmo(); }");
        let d = lint_spec(&spec, &cfg);
        let w121: Vec<_> = d.iter().filter(|x| x.code == "W121").collect();
        assert_eq!(w121.len(), 1, "{d:?}");
        assert!(w121[0].message.contains("`ghost`"), "{d:?}");
    }

    #[test]
    fn w122_fires_on_uncalled_requires_method() {
        let spec = parse_spec(
            "spec S;\n\
             class Gizmo {\n\
             boolean closed;\n\
             Gizmo() { this.closed = false; }\n\
             void poke() { requires !this.closed; }\n\
             }",
        )
        .unwrap();
        let cfg = cfg_of("program P uses S; void main() { Gizmo g = new Gizmo(); }");
        let d = lint_spec(&spec, &cfg);
        let w122: Vec<_> = d.iter().filter(|x| x.code == "W122").collect();
        assert_eq!(w122.len(), 1, "{d:?}");
        assert!(w122[0].message.contains("`Gizmo.poke`"), "{d:?}");
    }

    #[test]
    fn w122_quiet_when_requires_is_triggered() {
        let spec = parse_spec(
            "spec S;\n\
             class Gizmo {\n\
             boolean closed;\n\
             Gizmo() { this.closed = false; }\n\
             void poke() { requires !this.closed; }\n\
             }",
        )
        .unwrap();
        let cfg = cfg_of("program P uses S; void main() { Gizmo g = new Gizmo(); g.poke(); }");
        let d = lint_spec(&spec, &cfg);
        assert!(d.iter().all(|x| x.code != "W122"), "{d:?}");
    }

    const TRANSITION_SPEC: &str = "spec S;\n\
         class Gizmo {\n\
         boolean running;\n\
         Gizmo() { this.running = false; }\n\
         void start() { this.running = true; }\n\
         void status() { requires this.running; }\n\
         }";

    #[test]
    fn w123_fires_on_uncalled_transition_of_instantiated_class() {
        let spec = parse_spec(TRANSITION_SPEC).unwrap();
        let cfg = cfg_of("program P uses S; void main() { Gizmo g = new Gizmo(); }");
        let d = lint_spec(&spec, &cfg);
        let w123: Vec<_> = d.iter().filter(|x| x.code == "W123").collect();
        assert_eq!(w123.len(), 1, "{d:?}");
        assert!(w123[0].message.contains("`Gizmo.start`"), "{d:?}");
        // `status` has a requires clause: that gap is W122's, not W123's.
        assert!(d.iter().any(|x| x.code == "W122"), "{d:?}");
    }

    #[test]
    fn w123_quiet_when_the_transition_is_exercised() {
        let spec = parse_spec(TRANSITION_SPEC).unwrap();
        let cfg = cfg_of(
            "program P uses S; void main() { Gizmo g = new Gizmo(); g.start(); g.status(); }",
        );
        let d = lint_spec(&spec, &cfg);
        assert!(d.iter().all(|x| x.code != "W123"), "{d:?}");
    }

    #[test]
    fn w123_quiet_when_the_class_is_never_instantiated() {
        // A wholly unused class is not a state-machine gap; stay quiet
        // rather than restate that the class is unused.
        let spec = parse_spec(TRANSITION_SPEC).unwrap();
        let cfg = cfg_of("program P uses S; void main() { }");
        let d = lint_spec(&spec, &cfg);
        assert!(d.iter().all(|x| x.code != "W123"), "{d:?}");
    }

    #[test]
    fn builtin_jdbc_spec_is_w121_clean() {
        // The built-ins reference every declared field; W121 must be quiet
        // so `--spec` users can copy them as templates.
        let spec = hetsep_easl::builtin::jdbc();
        let cfg = cfg_of(
            "program P uses JDBC; void main() {\n\
             ConnectionManager cm = new ConnectionManager();\n\
             Connection con = cm.getConnection();\n\
             Statement st = cm.createStatement(con);\n\
             ResultSet rs = st.executeQuery(\"q\");\n\
             while (rs.next()) {\n\
             }\n}",
        );
        let d = lint_spec(&spec, &cfg);
        assert!(d.iter().all(|x| x.code != "W121"), "{d:?}");
    }

    #[test]
    fn factory_allocations_trigger_constructor_requires() {
        // `cm.getConnection()` allocates a Connection: the Connection
        // constructor counts as triggered even without a direct `new`.
        let spec = hetsep_easl::builtin::jdbc();
        let cfg = cfg_of(
            "program P uses JDBC; void main() {\n\
             ConnectionManager cm = new ConnectionManager();\n\
             Connection con = cm.getConnection();\n\
             con.close();\n}",
        );
        let mut d = Vec::new();
        untriggerable_requires(&spec, &cfg, &mut d);
        // Statement/ResultSet methods are never called here, so their
        // requires clauses are rightly reported…
        assert!(d.iter().any(|x| x.message.contains("Statement.")), "{d:?}");
        // …but nothing about Connection.close (no requires) or ctors.
        assert!(d.iter().all(|x| !x.message.contains("Connection.close")));
    }
}
