//! May-share heap components and structure-count cost estimation.
//!
//! The flow analysis ([`crate::points_to_flow`]) emits an undirected
//! may-point heap graph over allocation sites. Its weakly-connected
//! components are the program's **may-share partition**: two sites in
//! different components can never reach a common object, so a separation
//! subproblem tracking one of them owes nothing to the other — this is the
//! same separation the paper's strategies exploit, recovered statically.
//!
//! The partition serves two consumers:
//!
//! * **Pruning soundness** — a possibly-failing check implicates not just
//!   the sites bound at the check but everything they may share structure
//!   with; [`HeapSummary::suspects_closed`] closes the raw suspect seeds
//!   over their components, exactly as the baseline pre-pass closes over
//!   its (coarser) heap graph.
//! * **Cost prediction** — [`HeapSummary::estimate`] bounds the number of
//!   distinct abstract structures a subproblem on a site's component can
//!   visit: `locations × ∏ 2^b` over singleton sites and `3^b` over summary
//!   sites of the component (`b` = boolean fields of the site's class; a
//!   singleton's fields are definite, a summary node's may also be ½).
//!   The bound feeds `RunStats` counters, report rows, and the serve
//!   protocol so clients — and the future auto-strategy planner (ROADMAP
//!   item 5) — can see predicted cost before a run.

use std::collections::{BTreeMap, BTreeSet};

use hetsep_easl::ast::{FieldKind, Spec};
use hetsep_ir::Cfg;

use crate::points_to_flow::{FlowVerdicts, Site};

/// May-share partition of allocation sites plus per-component structure
/// bounds, derived from one [`FlowVerdicts`].
#[derive(Debug, Clone, Default)]
pub struct HeapSummary {
    /// Component index per site (dense, in ascending order of each
    /// component's smallest site).
    comp_of: BTreeMap<Site, usize>,
    /// Sites per component.
    components: Vec<BTreeSet<Site>>,
    /// Structure-count upper bound per component.
    estimates: Vec<u64>,
    /// Suspect seeds closed over their components.
    suspects_closed: BTreeSet<Site>,
}

impl HeapSummary {
    /// Number of may-share components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Component index of `site`, if the site exists.
    #[must_use]
    pub fn component_of(&self, site: Site) -> Option<usize> {
        self.comp_of.get(&site).copied()
    }

    /// Sites of the component containing `site` (empty if unknown).
    #[must_use]
    pub fn component_sites(&self, site: Site) -> BTreeSet<Site> {
        self.component_of(site)
            .map(|c| self.components[c].clone())
            .unwrap_or_default()
    }

    /// Suspect sites after closure over may-share components: a site in the
    /// same component as a raw suspect may share structure with it, so its
    /// subproblem cannot be pruned.
    #[must_use]
    pub fn suspects_closed(&self) -> &BTreeSet<Site> {
        &self.suspects_closed
    }

    /// Structure-count upper bound for the component containing `site`
    /// (0 for an unknown site).
    #[must_use]
    pub fn estimate(&self, site: Site) -> u64 {
        self.component_of(site)
            .map(|c| self.estimates[c])
            .unwrap_or(0)
    }

    /// Sum of the per-component bounds — the predicted total cost of
    /// verifying the whole may-share partition separately.
    #[must_use]
    pub fn total_estimate(&self) -> u64 {
        self.estimates.iter().fold(0, |a, &b| a.saturating_add(b))
    }
}

/// Builds the may-share partition and cost bounds from the flow analysis's
/// verdicts.
#[must_use]
pub fn summarize(cfg: &Cfg, spec: &Spec, verdicts: &FlowVerdicts) -> HeapSummary {
    // Union-find over sites, seeded singleton and merged along heap edges.
    let sites: Vec<Site> = verdicts.site_class.keys().copied().collect();
    let index: BTreeMap<Site, usize> = sites.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut parent: Vec<usize> = (0..sites.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(a, b) in &verdicts.heap_edges {
        if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) {
            let (ra, rb) = (find(&mut parent, ia), find(&mut parent, ib));
            // Root at the smaller index for deterministic numbering.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi] = lo;
        }
    }

    let mut by_root: BTreeMap<usize, BTreeSet<Site>> = BTreeMap::new();
    for (i, &s) in sites.iter().enumerate() {
        let r = find(&mut parent, i);
        by_root.entry(r).or_default().insert(s);
    }
    let components: Vec<BTreeSet<Site>> = by_root.into_values().collect();
    let mut comp_of = BTreeMap::new();
    for (c, members) in components.iter().enumerate() {
        for &s in members {
            comp_of.insert(s, c);
        }
    }

    let locations = cfg.node_count().max(1) as u64;
    let estimates: Vec<u64> = components
        .iter()
        .map(|members| {
            members
                .iter()
                .map(|&s| {
                    let bools = verdicts
                        .site_class
                        .get(&s)
                        .and_then(|cls| spec.class(cls))
                        .map(|c| {
                            c.fields
                                .iter()
                                .filter(|(_, k)| matches!(k, FieldKind::Bool))
                                .count() as u32
                        })
                        .unwrap_or(0);
                    let base: u64 = if verdicts.singleton.contains(&s) { 2 } else { 3 };
                    base.checked_pow(bools).unwrap_or(u64::MAX)
                })
                .fold(locations, u64::saturating_mul)
        })
        .collect();

    let suspects_closed = components
        .iter()
        .filter(|members| !members.is_disjoint(&verdicts.suspects))
        .flat_map(|members| members.iter().copied())
        .collect();

    HeapSummary {
        comp_of,
        components,
        estimates,
        suspects_closed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points_to_flow::analyze_flow;
    use hetsep_easl::builtin;
    use hetsep_ir::parse_program;

    fn summary(src: &str, spec: &Spec) -> (HeapSummary, FlowVerdicts) {
        let program = parse_program(src).unwrap();
        let cfg = Cfg::build(&program, "main").unwrap();
        let v = analyze_flow(&cfg, spec).unwrap();
        (summarize(&cfg, spec, &v), v)
    }

    #[test]
    fn unrelated_sites_form_separate_components() {
        let (s, v) = summary(
            "program P uses IOStreams; void main() {\n\
             InputStream a = new InputStream();\n\
             InputStream b = new InputStream();\n\
             a.read(); a.close();\n\
             b.read(); b.close();\n\
             }",
            &builtin::iostreams(),
        );
        assert_eq!(v.site_class.len(), 2);
        assert_eq!(s.component_count(), 2);
        let sites: Vec<_> = v.site_class.keys().copied().collect();
        assert_ne!(s.component_of(sites[0]), s.component_of(sites[1]));
    }

    #[test]
    fn jdbc_ownership_links_sites_into_one_component() {
        // The JDBC spec wires connection → statement → result-set
        // ownership through reference fields: one may-share component.
        let (s, v) = summary(
            "program P uses JDBC; void main() {\n\
             ConnectionManager cm = new ConnectionManager();\n\
             Connection con = cm.getConnection();\n\
             Statement st = cm.createStatement(con);\n\
             ResultSet rs = st.executeQuery(\"q\");\n\
             rs.close();\n\
             }",
            &builtin::jdbc(),
        );
        assert!(v.site_class.len() > 1);
        let linked: BTreeSet<usize> = v
            .heap_edges
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .filter_map(|x| s.component_of(x))
            .collect();
        assert_eq!(linked.len(), 1, "heap-linked sites share a component");
        assert!(s.component_count() < v.site_class.len());
    }

    #[test]
    fn suspect_closure_poisons_whole_component_only() {
        // `con` is left open (suspect); the statement shares its component,
        // but the independent second connection manager chain does not.
        let (s, v) = summary(
            "program P uses IOStreams; void main() {\n\
             InputStream bad = new InputStream();\n\
             bad.close();\n\
             bad.read();\n\
             InputStream good = new InputStream();\n\
             good.read();\n\
             good.close();\n\
             }",
            &builtin::iostreams(),
        );
        assert!(!v.suspects.is_empty());
        assert!(!s.suspects_closed().is_empty());
        assert!(
            s.suspects_closed().len() < v.site_class.len(),
            "the clean component stays unsuspect: {s:?}"
        );
    }

    #[test]
    fn estimates_scale_with_fields_and_multiplicity() {
        let single = "program P uses IOStreams; void main() {\n\
                      InputStream f = new InputStream();\n\
                      f.read(); f.close();\n\
                      }";
        let looped = "program P uses IOStreams; void main() {\n\
                      while (?) {\n\
                      InputStream f = new InputStream();\n\
                      f.read(); f.close();\n\
                      }\n\
                      }";
        let spec = builtin::iostreams();
        let (s1, v1) = summary(single, &spec);
        let (s2, v2) = summary(looped, &spec);
        let site1 = *v1.site_class.keys().next().unwrap();
        let site2 = *v2.site_class.keys().next().unwrap();
        let per_loc1 = s1.estimate(site1) / Cfg::build(&parse_program(single).unwrap(), "main")
            .unwrap()
            .node_count() as u64;
        let per_loc2 = s2.estimate(site2) / Cfg::build(&parse_program(looped).unwrap(), "main")
            .unwrap()
            .node_count() as u64;
        assert!(per_loc2 > per_loc1, "summary site admits the ½ value");
        assert_eq!(s1.total_estimate(), s1.estimate(site1));
    }

    #[test]
    fn unknown_site_estimates_zero() {
        let (s, _) = summary(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             f.read(); f.close();\n\
             }",
            &builtin::iostreams(),
        );
        assert_eq!(s.estimate(9999), 0);
        assert_eq!(s.component_of(9999), None);
        assert!(s.component_sites(9999).is_empty());
    }
}
