//! Flow- and field-sensitive points-to × typestate product analysis.
//!
//! This is preanalysis **v2**: where the `hetsep-baseline` pre-pass couples a
//! *flow-insensitive* Andersen-style points-to closure with a flow-sensitive
//! typestate pass (the ESP configuration the paper compares against), this
//! module runs one product analysis on the [`crate::dataflow`] framework
//! whose facts carry, per CFG node,
//!
//! * a points-to map from CFG variables to allocation sites,
//! * a may-points-to heap graph `(site, field) → sites`, and
//! * a typestate map `(site, boolean field) → [`FieldVal`]`.
//!
//! Because the variable and heap components are flow-sensitive, the analysis
//! can perform **strong updates**: an assignment through a variable that
//! points to exactly one *singleton* allocation site (a site not on a CFG
//! cycle, hence representing at most one concrete object) replaces the old
//! field value instead of joining with it. This is precisely the precision
//! the baseline loses by merging all flows per variable — e.g. a handle that
//! is re-`new`ed mid-procedure keeps its two lifetimes separate here, while
//! the baseline conflates them and flags both sites suspect.
//!
//! Findings (possibly-failing `requires` checks, their suspect allocation
//! sites, and *definitely*-failing checks for lint `W105`) are collected in a
//! second pass over all edges after the fixpoint converges: the converged
//! fact at an edge's source over-approximates every concrete state reaching
//! that edge, so evaluating each check once against it covers every concrete
//! execution — and avoids reporting from the transient facts of early
//! fixpoint iterations.
//!
//! Soundness of the suspect set follows the same argument as the baseline
//! pre-pass (DESIGN.md §10, §15): every concrete execution state at an edge
//! is abstracted by the converged fact, a concrete check failure therefore
//! makes the abstract check evaluation "may fail", and the failing
//! environment's sites (closed over may-share heap components by the
//! caller, see [`crate::heap_components`]) are marked suspect. A site
//! outside that closure can never be blamed for a reported error.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use hetsep_easl::ast::{
    BoolRhs as EaslBoolRhs, EaslCond, EaslMethod, EaslStmt, FieldKind, Path, RefRhs, ReturnValue,
    Spec,
};
use hetsep_ir::ast::Cond;
use hetsep_ir::cfg::{BoolRhs, Cfg, CfgEdge, CfgOp};
use hetsep_ir::Arg;

use crate::dataflow::{solve, DataflowProblem, Direction};

/// An allocation site: the index of the CFG edge that allocates (a `new` in
/// the program, or a library call whose Easl body allocates). Identical to
/// the baseline's and the engine's site numbering, since all three build the
/// same `Cfg::build(program, "main")` graph.
pub type Site = usize;

/// Four-valued abstraction of a boolean field: the standard flat lattice
/// `Bot ⊑ {False, True} ⊑ Top`, ordered by information loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum FieldVal {
    /// No value observed yet (unreached / object not allocated here).
    #[default]
    Bot,
    /// Definitely `false` on every path.
    False,
    /// Definitely `true` on every path.
    True,
    /// May be either.
    Top,
}

impl FieldVal {
    /// Least upper bound.
    #[must_use]
    pub fn join(self, other: FieldVal) -> FieldVal {
        use FieldVal::{Bot, Top};
        match (self, other) {
            (Bot, v) | (v, Bot) => v,
            (a, b) if a == b => a,
            _ => Top,
        }
    }

    /// Whether the concrete value may be `true`.
    #[must_use]
    pub fn maybe_true(self) -> bool {
        matches!(self, FieldVal::True | FieldVal::Top)
    }
}

/// The product fact at a CFG node. Ordered maps keep joins, iteration, and
/// therefore the whole analysis deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlowFact {
    /// May-points-to sets of reference variables. An absent entry and an
    /// empty set both mean "points to no site" (definitely null or unset).
    vars: BTreeMap<String, BTreeSet<Site>>,
    /// May-points-to heap graph over reference/set fields.
    heap: BTreeMap<(Site, String), BTreeSet<Site>>,
    /// Typestate of boolean fields per site.
    state: BTreeMap<(Site, String), FieldVal>,
    /// Values of program-level boolean variables (refined at branches).
    bools: BTreeMap<String, FieldVal>,
}

impl FlowFact {
    fn of_var(&self, var: &str) -> BTreeSet<Site> {
        self.vars.get(var).cloned().unwrap_or_default()
    }

    fn of_field(&self, owners: &BTreeSet<Site>, field: &str) -> BTreeSet<Site> {
        let mut out = BTreeSet::new();
        for &o in owners {
            if let Some(ts) = self.heap.get(&(o, field.to_owned())) {
                out.extend(ts.iter().copied());
            }
        }
        out
    }

    /// Resolves an Easl path against an environment of root bindings.
    fn resolve_path(&self, env: &BTreeMap<String, BTreeSet<Site>>, path: &Path) -> BTreeSet<Site> {
        let mut acc = env.get(&path.root).cloned().unwrap_or_default();
        for field in &path.fields {
            acc = self.of_field(&acc, field);
        }
        acc
    }

    /// Reads a boolean field through a path: the join over all sites the
    /// owner prefix may denote. An allocated-but-never-written field reads
    /// `False` (allocation initializes every boolean field to `False`); an
    /// empty owner set reads `Bot`.
    fn read_bool(&self, env: &BTreeMap<String, BTreeSet<Site>>, path: &Path) -> FieldVal {
        let Some((field, init)) = path.fields.split_last() else {
            return FieldVal::Top;
        };
        let owner = Path {
            root: path.root.clone(),
            fields: init.to_vec(),
        };
        let mut acc = FieldVal::Bot;
        for s in self.resolve_path(env, &owner) {
            let v = self
                .state
                .get(&(s, field.clone()))
                .copied()
                .unwrap_or(FieldVal::False);
            acc = acc.join(v);
        }
        acc
    }
}

/// A `requires` clause that fails on *every* concrete execution reaching its
/// call, per the converged facts — the substrate of lint `W105`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DefiniteFailure {
    /// Source line of the call.
    pub line: u32,
    /// CFG name of the receiver variable (`new`-bound variable for
    /// constructor checks).
    pub recv: String,
    /// Library class owning the method.
    pub class: String,
    /// Method (or constructor) whose `requires` fails.
    pub method: String,
}

/// Result of [`analyze_flow`]: per-site verdicts plus the raw material the
/// heap-component analysis and the v2 lints consume.
#[derive(Debug, Clone, Default)]
pub struct FlowVerdicts {
    /// Class of every allocation site.
    pub site_class: BTreeMap<Site, String>,
    /// Sites not on any CFG cycle: at most one concrete object each.
    pub singleton: BTreeSet<Site>,
    /// Sites implicated in a possibly-failing or undecidable check — the
    /// raw seeds, *before* closure over may-share heap components.
    pub suspects: BTreeSet<Site>,
    /// Undirected may-point edges of the heap graph, unioned over all
    /// reachable nodes' converged facts.
    pub heap_edges: BTreeSet<(Site, Site)>,
    /// Possibly-failing checks `(line, message)` (diagnostic aid only; the
    /// engine remains the authority on reported errors).
    pub may_errors: BTreeSet<(u32, String)>,
    /// Checks that fail on every execution (lint `W105`).
    pub definite_failures: BTreeSet<DefiniteFailure>,
}

impl FlowVerdicts {
    /// Whether the analysis proved every check involving `site` safe,
    /// before heap-component closure.
    #[must_use]
    pub fn proved_safe(&self, site: Site) -> bool {
        !self.suspects.contains(&site)
    }
}

/// The flow analysis could not interpret the program (e.g. a call to a
/// method the spec does not declare). Callers fall back to not pruning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowError {
    /// Explanation.
    pub message: String,
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow preanalysis: {}", self.message)
    }
}

impl std::error::Error for FlowError {}

/// Runs the product analysis to its fixpoint and evaluates every check
/// against the converged facts.
///
/// # Errors
///
/// Fails when a library call cannot be resolved against the spec (unknown
/// receiver type or missing method) — mirroring the baseline, so the caller
/// treats the program as unprunable rather than silently skipping effects.
pub fn analyze_flow(cfg: &Cfg, spec: &Spec) -> Result<FlowVerdicts, FlowError> {
    let sites = discover_sites(cfg, spec)?;
    let analysis = FlowAnalysis { cfg, spec, sites };
    let solution = solve(cfg, &analysis);

    // Post-fixpoint findings pass: re-apply every edge's interpretation on
    // the converged fact at its source, collecting checks this time.
    let mut findings = Findings::default();
    for (ix, edge) in cfg.edges().iter().enumerate() {
        if let Some(fact) = solution.at(edge.from) {
            let mut scratch = fact.clone();
            analysis.apply_edge(ix, edge, &mut scratch, Some(&mut findings));
        }
    }

    let mut heap_edges = BTreeSet::new();
    for node in 0..cfg.node_count() {
        if let Some(fact) = solution.at(node) {
            for ((owner, _), targets) in &fact.heap {
                for &t in targets {
                    heap_edges.insert((*owner, t));
                }
            }
        }
    }

    Ok(FlowVerdicts {
        site_class: analysis
            .sites
            .iter()
            .map(|(&s, d)| (s, d.class.clone()))
            .collect(),
        singleton: analysis
            .sites
            .iter()
            .filter(|(_, d)| d.singleton)
            .map(|(&s, _)| s)
            .collect(),
        suspects: findings.suspects,
        heap_edges,
        may_errors: findings.may_errors,
        definite_failures: findings.definite_failures,
    })
}

/// Static description of one allocation site.
struct SiteDesc {
    class: String,
    singleton: bool,
}

/// Checks collected by the post-fixpoint pass.
#[derive(Default)]
struct Findings {
    suspects: BTreeSet<Site>,
    may_errors: BTreeSet<(u32, String)>,
    definite_failures: BTreeSet<DefiniteFailure>,
}

impl Findings {
    /// Marks every site bound anywhere in `env` suspect.
    fn suspect_env(&mut self, env: &BTreeMap<String, BTreeSet<Site>>) {
        for sites in env.values() {
            self.suspects.extend(sites.iter().copied());
        }
    }
}

/// Context of the library call being interpreted (for findings).
struct CallCtx {
    line: u32,
    recv: String,
    class: String,
    method: String,
    /// Site allocated by this call's body, if any.
    alloc_site: Option<Site>,
}

struct FlowAnalysis<'a> {
    cfg: &'a Cfg,
    spec: &'a Spec,
    sites: BTreeMap<Site, SiteDesc>,
}

impl DataflowProblem for FlowAnalysis<'_> {
    type Fact = FlowFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> FlowFact {
        FlowFact::default()
    }

    fn transfer(&self, edge: &CfgEdge, fact: &FlowFact) -> FlowFact {
        let mut out = fact.clone();
        self.apply_edge(self.edge_index(edge), edge, &mut out, None);
        out
    }

    fn join(&self, into: &mut FlowFact, from: &FlowFact) -> bool {
        let mut changed = false;
        for (k, v) in &from.vars {
            if v.is_empty() && !into.vars.contains_key(k) {
                continue; // empty set ≡ absent: skip the no-op insert
            }
            let slot = into.vars.entry(k.clone()).or_default();
            let before = slot.len();
            slot.extend(v.iter().copied());
            changed |= slot.len() != before;
        }
        for (k, v) in &from.heap {
            if v.is_empty() && !into.heap.contains_key(k) {
                continue;
            }
            let slot = into.heap.entry(k.clone()).or_default();
            let before = slot.len();
            slot.extend(v.iter().copied());
            changed |= slot.len() != before;
        }
        for (k, &v) in &from.state {
            if v == FieldVal::Bot && !into.state.contains_key(k) {
                continue;
            }
            let slot = into.state.entry(k.clone()).or_default();
            let joined = slot.join(v);
            changed |= joined != *slot;
            *slot = joined;
        }
        for (k, &v) in &from.bools {
            if v == FieldVal::Bot && !into.bools.contains_key(k) {
                continue;
            }
            let slot = into.bools.entry(k.clone()).or_default();
            let joined = slot.join(v);
            changed |= joined != *slot;
            *slot = joined;
        }
        changed
    }
}

impl FlowAnalysis<'_> {
    /// Index of `edge` within the CFG's edge array. The solver and the
    /// findings pass both hand out references into that array, so the index
    /// is recovered from the reference's offset.
    fn edge_index(&self, edge: &CfgEdge) -> Site {
        let base = self.cfg.edges().as_ptr() as usize;
        let addr = std::ptr::from_ref(edge) as usize;
        let ix = (addr - base) / std::mem::size_of::<CfgEdge>();
        debug_assert!(ix < self.cfg.edges().len());
        ix
    }

    fn is_singleton(&self, site: Site) -> bool {
        self.sites.get(&site).is_some_and(|d| d.singleton)
    }

    /// Applies one CFG edge to `fact` in place. With `findings`, checks are
    /// evaluated and recorded (the post-fixpoint pass); without, only the
    /// lattice effects run (the transfer function).
    fn apply_edge(
        &self,
        ix: Site,
        edge: &CfgEdge,
        fact: &mut FlowFact,
        mut findings: Option<&mut Findings>,
    ) {
        match &edge.op {
            CfgOp::Nop => {}
            CfgOp::AssignNull { dst } => {
                fact.vars.insert(dst.clone(), BTreeSet::new());
            }
            CfgOp::AssignVar { dst, src } => {
                let v = fact.of_var(src);
                fact.vars.insert(dst.clone(), v);
            }
            CfgOp::LoadField { dst, src, field } => {
                let owners = fact.of_var(src);
                let v = fact.of_field(&owners, field);
                fact.vars.insert(dst.clone(), v);
            }
            CfgOp::StoreField { dst, field, src } => {
                let owners = fact.of_var(dst);
                let values = src.as_ref().map(|s| fact.of_var(s)).unwrap_or_default();
                self.store_heap(fact, &owners, field, values);
            }
            CfgOp::LoadBoolField { dst, src, field } => {
                let owners = fact.of_var(src);
                let mut acc = FieldVal::Bot;
                for &s in &owners {
                    let v = fact
                        .state
                        .get(&(s, field.clone()))
                        .copied()
                        .unwrap_or(FieldVal::False);
                    acc = acc.join(v);
                }
                fact.bools.insert(dst.clone(), acc);
            }
            CfgOp::StoreBoolField { dst, field, value } => {
                let owners = fact.of_var(dst);
                let val = self.eval_bool_rhs(fact, value);
                self.store_state(fact, &owners, field, val);
            }
            CfgOp::New { dst, class, args } => {
                if let Some(cls) = self.spec.class(class) {
                    let mut env = BTreeMap::new();
                    env.insert("this".to_owned(), BTreeSet::from([ix]));
                    bind_params(&mut env, &cls.ctor, args, fact);
                    self.apply_allocation(fact, ix);
                    let ctx = CallCtx {
                        line: edge.line,
                        recv: dst.clone().unwrap_or_else(|| class.clone()),
                        class: class.clone(),
                        method: class.clone(),
                        alloc_site: None,
                    };
                    let mut returned = BTreeSet::new();
                    self.interpret(
                        &cls.ctor.body,
                        &mut env,
                        &ctx,
                        fact,
                        &mut returned,
                        findings.as_deref_mut(),
                    );
                }
                if let Some(dst) = dst {
                    fact.vars.insert(dst.clone(), BTreeSet::from([ix]));
                }
            }
            CfgOp::CallLib {
                result,
                recv,
                method,
                args,
            } => {
                let receivers = fact.of_var(recv);
                let mut returned = BTreeSet::new();
                let mut any_body = false;
                for &site in &receivers {
                    let Some(desc) = self.sites.get(&site) else {
                        continue;
                    };
                    let Some(cls) = self.spec.class(&desc.class) else {
                        continue;
                    };
                    let Some(m) = cls.method(method) else {
                        continue; // validated against the static type already
                    };
                    any_body = true;
                    let mut env = BTreeMap::new();
                    env.insert("this".to_owned(), BTreeSet::from([site]));
                    bind_params(&mut env, m, args, fact);
                    let alloc_site = m
                        .body
                        .iter()
                        .any(|s| matches!(s, EaslStmt::Alloc { .. }))
                        .then_some(ix);
                    if alloc_site.is_some() {
                        self.apply_allocation(fact, ix);
                    }
                    let ctx = CallCtx {
                        line: edge.line,
                        recv: recv.clone(),
                        class: desc.class.clone(),
                        method: method.clone(),
                        alloc_site,
                    };
                    self.interpret(
                        &m.body,
                        &mut env,
                        &ctx,
                        fact,
                        &mut returned,
                        findings.as_deref_mut(),
                    );
                }
                if let Some(result) = result {
                    if any_body {
                        fact.vars.insert(result.clone(), returned);
                    }
                }
            }
            CfgOp::AssignBool { dst, value } => {
                let v = self.eval_bool_rhs(fact, value);
                fact.bools.insert(dst.clone(), v);
            }
            CfgOp::Assume { cond, polarity } => match cond {
                Cond::NullCheck { var, negated } => {
                    // The branch where `var == null` holds: it aliases no
                    // site, so its points-to set is empty there.
                    if *polarity != *negated {
                        fact.vars.insert(var.clone(), BTreeSet::new());
                    }
                }
                Cond::BoolVar { var, negated } => {
                    let value = *polarity != *negated;
                    fact.bools.insert(
                        var.clone(),
                        if value { FieldVal::True } else { FieldVal::False },
                    );
                }
                Cond::Nondet | Cond::RefEq { .. } | Cond::CallBool { .. } => {}
            },
        }
    }

    fn eval_bool_rhs(&self, fact: &FlowFact, value: &BoolRhs) -> FieldVal {
        match value {
            BoolRhs::Const(true) => FieldVal::True,
            BoolRhs::Const(false) => FieldVal::False,
            BoolRhs::Nondet => FieldVal::Top,
            BoolRhs::Var(v) => fact.bools.get(v).copied().unwrap_or(FieldVal::Top),
        }
    }

    /// Allocation effect: every boolean field of the site's class starts
    /// `False` — strongly at singleton sites, weakly (join) otherwise.
    fn apply_allocation(&self, fact: &mut FlowFact, site: Site) {
        let Some(desc) = self.sites.get(&site) else {
            return;
        };
        let Some(cls) = self.spec.class(&desc.class) else {
            return;
        };
        let strong = desc.singleton;
        for (field, kind) in &cls.fields {
            if matches!(kind, FieldKind::Bool) {
                let slot = fact.state.entry((site, field.clone())).or_default();
                *slot = if strong {
                    FieldVal::False
                } else {
                    slot.join(FieldVal::False)
                };
            }
        }
    }

    /// Stores `values` into `field` of `owners`: strong replacement when the
    /// owner is a unique singleton object, weak extension otherwise.
    fn store_heap(
        &self,
        fact: &mut FlowFact,
        owners: &BTreeSet<Site>,
        field: &str,
        values: BTreeSet<Site>,
    ) {
        let strong = owners.len() == 1 && owners.iter().all(|&o| self.is_singleton(o));
        for &o in owners {
            let slot = fact.heap.entry((o, field.to_owned())).or_default();
            if strong {
                *slot = values.clone();
            } else {
                slot.extend(values.iter().copied());
            }
        }
    }

    /// Stores `val` into boolean `field` of `owners` under the same
    /// strong/weak discipline.
    fn store_state(
        &self,
        fact: &mut FlowFact,
        owners: &BTreeSet<Site>,
        field: &str,
        val: FieldVal,
    ) {
        let strong = owners.len() == 1 && owners.iter().all(|&o| self.is_singleton(o));
        for &o in owners {
            let slot = fact.state.entry((o, field.to_owned())).or_default();
            *slot = if strong { val } else { slot.join(val) };
        }
    }

    /// Interprets an Easl method body sequentially against `fact`.
    #[allow(clippy::too_many_lines)]
    fn interpret(
        &self,
        stmts: &[EaslStmt],
        env: &mut BTreeMap<String, BTreeSet<Site>>,
        ctx: &CallCtx,
        fact: &mut FlowFact,
        returned: &mut BTreeSet<Site>,
        mut findings: Option<&mut Findings>,
    ) {
        for stmt in stmts {
            match stmt {
                EaslStmt::Requires(cond) => {
                    if let Some(f) = findings.as_deref_mut() {
                        let may = self.cond_may_fail(env, cond, fact);
                        if may {
                            f.may_errors
                                .insert((ctx.line, "requires violated (preanalysis)".into()));
                        }
                        if may || cond_undecidable(cond) {
                            f.suspect_env(env);
                        }
                        if self.cond_must_fail(env, cond, fact) {
                            f.definite_failures.insert(DefiniteFailure {
                                line: ctx.line,
                                recv: ctx.recv.clone(),
                                class: ctx.class.clone(),
                                method: ctx.method.clone(),
                            });
                        }
                    }
                }
                EaslStmt::AssignBool {
                    target,
                    field,
                    value,
                } => {
                    let owners = fact.resolve_path(env, target);
                    let val = match value {
                        EaslBoolRhs::Const(true) => FieldVal::True,
                        EaslBoolRhs::Const(false) => FieldVal::False,
                        EaslBoolRhs::Nondet => FieldVal::Top,
                        EaslBoolRhs::Read(p) => fact.read_bool(env, p),
                    };
                    // Direct (non-path) targets of a unique singleton object
                    // admit a strong update, exactly as in the baseline.
                    let strong = target.fields.is_empty()
                        && owners.len() == 1
                        && owners.iter().all(|&o| self.is_singleton(o));
                    for &o in &owners {
                        let slot = fact.state.entry((o, field.clone())).or_default();
                        *slot = if strong { val } else { slot.join(val) };
                    }
                }
                EaslStmt::AssignRef {
                    target,
                    field,
                    value,
                } => {
                    let owners = fact.resolve_path(env, target);
                    let values = match value {
                        RefRhs::Null => BTreeSet::new(),
                        RefRhs::Path(p) => fact.resolve_path(env, p),
                    };
                    self.store_heap(fact, &owners, field, values);
                }
                EaslStmt::SetClear { target, field } => {
                    let owners = fact.resolve_path(env, target);
                    if owners.len() == 1 && owners.iter().all(|&o| self.is_singleton(o)) {
                        for &o in &owners {
                            fact.heap.insert((o, field.clone()), BTreeSet::new());
                        }
                    }
                    // Weakly clearing is a no-op: the set may keep anything.
                }
                EaslStmt::SetAdd {
                    target,
                    field,
                    elem,
                } => {
                    let owners = fact.resolve_path(env, target);
                    let values = fact.resolve_path(env, elem);
                    for &o in &owners {
                        fact.heap
                            .entry((o, field.clone()))
                            .or_default()
                            .extend(values.iter().copied());
                    }
                }
                EaslStmt::Alloc { var, class, args } => {
                    let Some(site) = ctx.alloc_site else {
                        continue;
                    };
                    env.insert(var.clone(), BTreeSet::from([site]));
                    if let Some(cls) = self.spec.class(class) {
                        let mut ctor_env = BTreeMap::new();
                        ctor_env.insert("this".to_owned(), BTreeSet::from([site]));
                        for ((pname, pclass), arg) in cls.ctor.params.iter().zip(args) {
                            if pclass == "String" {
                                continue;
                            }
                            ctor_env.insert(pname.clone(), fact.resolve_path(env, arg));
                        }
                        self.interpret(
                            &cls.ctor.body,
                            &mut ctor_env,
                            ctx,
                            fact,
                            returned,
                            findings.as_deref_mut(),
                        );
                    }
                }
                EaslStmt::If {
                    cond: _,
                    then_branch,
                    else_branch,
                } => {
                    let mut t_fact = fact.clone();
                    let mut t_env = env.clone();
                    self.interpret(
                        then_branch,
                        &mut t_env,
                        ctx,
                        &mut t_fact,
                        returned,
                        findings.as_deref_mut(),
                    );
                    let mut e_env = env.clone();
                    self.interpret(
                        else_branch,
                        &mut e_env,
                        ctx,
                        fact,
                        returned,
                        findings.as_deref_mut(),
                    );
                    self.join(fact, &t_fact);
                }
                EaslStmt::Foreach {
                    var,
                    target,
                    field,
                    body,
                } => {
                    let owners = fact.resolve_path(env, target);
                    let elems = fact.of_field(&owners, field);
                    let saved = env.insert(var.clone(), elems);
                    self.interpret(body, env, ctx, fact, returned, findings.as_deref_mut());
                    match saved {
                        Some(v) => {
                            env.insert(var.clone(), v);
                        }
                        None => {
                            env.remove(var);
                        }
                    }
                }
                EaslStmt::Return(Some(ReturnValue::Path(p))) => {
                    returned.extend(fact.resolve_path(env, p));
                }
                EaslStmt::Return(_) => {}
            }
        }
    }

    /// Whether the condition may evaluate to `false` (the check may fail)
    /// under the abstract fact.
    fn cond_may_fail(
        &self,
        env: &BTreeMap<String, BTreeSet<Site>>,
        cond: &EaslCond,
        fact: &FlowFact,
    ) -> bool {
        match cond {
            EaslCond::Read(p) => !matches!(fact.read_bool(env, p), FieldVal::True),
            EaslCond::Not(inner) => match inner.as_ref() {
                EaslCond::Read(p) => fact.read_bool(env, p).maybe_true(),
                _ => false, // undecidable shapes handled separately
            },
            EaslCond::And(a, b) => {
                self.cond_may_fail(env, a, fact) || self.cond_may_fail(env, b, fact)
            }
            EaslCond::IsNull(_) | EaslCond::NotNull(_) => false,
        }
    }

    /// Whether the condition evaluates to `false` on *every* concrete
    /// execution: the receiver reads a definite value that contradicts the
    /// check. `Bot` (no object flows here) never fires.
    fn cond_must_fail(
        &self,
        env: &BTreeMap<String, BTreeSet<Site>>,
        cond: &EaslCond,
        fact: &FlowFact,
    ) -> bool {
        match cond {
            EaslCond::Read(p) => fact.read_bool(env, p) == FieldVal::False,
            EaslCond::Not(inner) => match inner.as_ref() {
                EaslCond::Read(p) => fact.read_bool(env, p) == FieldVal::True,
                _ => false,
            },
            EaslCond::And(a, b) => {
                self.cond_must_fail(env, a, fact) || self.cond_must_fail(env, b, fact)
            }
            EaslCond::IsNull(_) | EaslCond::NotNull(_) => false,
        }
    }
}

/// Whether a condition's truth cannot be decided by the boolean-field
/// abstraction at all (null/shape tests): its sites stay suspect.
fn cond_undecidable(cond: &EaslCond) -> bool {
    match cond {
        EaslCond::IsNull(_) | EaslCond::NotNull(_) => true,
        EaslCond::Not(inner) => !matches!(inner.as_ref(), EaslCond::Read(_)),
        EaslCond::And(a, b) => cond_undecidable(a) || cond_undecidable(b),
        EaslCond::Read(_) => false,
    }
}

/// Binds a method's parameters from call arguments (inert `String`
/// parameters skipped, mirroring Easl compilation).
fn bind_params(
    env: &mut BTreeMap<String, BTreeSet<Site>>,
    method: &EaslMethod,
    args: &[Arg],
    fact: &FlowFact,
) {
    for ((pname, pclass), arg) in method.params.iter().zip(args) {
        if pclass == "String" {
            continue;
        }
        let sites = match arg {
            Arg::Var(v) => fact.of_var(v),
            Arg::Null | Arg::Str(_) => BTreeSet::new(),
        };
        env.insert(pname.clone(), sites);
    }
}

/// Discovers every allocation site and validates library calls against the
/// spec using static receiver types (exact — the language has no
/// subtyping), so the transfer function never meets an unresolvable call.
fn discover_sites(cfg: &Cfg, spec: &Spec) -> Result<BTreeMap<Site, SiteDesc>, FlowError> {
    let mut sites = BTreeMap::new();
    for (ix, edge) in cfg.edges().iter().enumerate() {
        match &edge.op {
            CfgOp::New { class, .. } => {
                sites.insert(
                    ix,
                    SiteDesc {
                        class: class.clone(),
                        singleton: !on_cycle(cfg, ix),
                    },
                );
            }
            CfgOp::CallLib { recv, method, .. } => {
                let Some(rtype) = cfg.var_type(recv) else {
                    return Err(FlowError {
                        message: format!(
                            "line {}: receiver `{recv}` has no declared type",
                            edge.line
                        ),
                    });
                };
                let Some(cls) = spec.class(rtype) else {
                    continue; // call on a program-local class: no spec effects
                };
                let Some(m) = cls.method(method) else {
                    return Err(FlowError {
                        message: format!(
                            "line {}: class `{rtype}` has no method `{method}`",
                            edge.line
                        ),
                    });
                };
                if let Some(EaslStmt::Alloc { class, .. }) =
                    m.body.iter().find(|s| matches!(s, EaslStmt::Alloc { .. }))
                {
                    sites.insert(
                        ix,
                        SiteDesc {
                            class: class.clone(),
                            singleton: !on_cycle(cfg, ix),
                        },
                    );
                }
            }
            _ => {}
        }
    }
    Ok(sites)
}

/// Whether the edge lies on a CFG cycle (its target reaches back to its
/// source) — if so, the allocation may execute more than once and the site
/// abstracts multiple concrete objects.
fn on_cycle(cfg: &Cfg, edge_ix: usize) -> bool {
    let edge = &cfg.edges()[edge_ix];
    let mut seen = vec![false; cfg.node_count()];
    let mut queue = VecDeque::from([edge.to]);
    seen[edge.to] = true;
    while let Some(n) = queue.pop_front() {
        if n == edge.from {
            return true;
        }
        for &out_ix in cfg.out_edges(n) {
            let t = cfg.edges()[out_ix].to;
            if !seen[t] {
                seen[t] = true;
                queue.push_back(t);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsep_easl::builtin;
    use hetsep_ir::parse_program;

    fn run(src: &str, spec: &Spec) -> FlowVerdicts {
        let program = parse_program(src).unwrap();
        let cfg = Cfg::build(&program, "main").unwrap();
        analyze_flow(&cfg, spec).unwrap()
    }

    #[test]
    fn clean_straightline_program_has_no_suspects() {
        let v = run(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             f.read();\n\
             f.close();\n\
             }",
            &builtin::iostreams(),
        );
        assert!(v.suspects.is_empty(), "{v:?}");
        assert!(v.definite_failures.is_empty());
        assert_eq!(v.site_class.len(), 1);
        assert_eq!(v.singleton.len(), 1);
    }

    #[test]
    fn read_after_close_is_suspect_and_definite() {
        let v = run(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             f.close();\n\
             f.read();\n\
             }",
            &builtin::iostreams(),
        );
        assert!(!v.suspects.is_empty(), "{v:?}");
        let fail = v.definite_failures.iter().next().expect("definite failure");
        assert_eq!(fail.line, 4);
        assert_eq!(fail.recv, "f");
        assert_eq!(fail.method, "read");
    }

    #[test]
    fn loop_allocation_is_not_singleton_and_stays_suspect() {
        // Fig. 3-style loop: the site abstracts many objects, so `close`
        // weak-updates and the later `read` may see a closed stream.
        let v = run(
            "program P uses IOStreams; void main() {\n\
             while (?) {\n\
             InputStream f = new InputStream();\n\
             f.read();\n\
             if (?) { f.close(); }\n\
             f.read();\n\
             }\n\
             }",
            &builtin::iostreams(),
        );
        assert!(v.singleton.is_empty(), "loop site must not be singleton");
        assert!(!v.suspects.is_empty(), "{v:?}");
    }

    #[test]
    fn reassigned_handle_keeps_lifetimes_separate() {
        // The baseline's flow-insensitive points-to conflates both sites
        // through `f` and flags both; flow-sensitivity keeps them apart.
        let v = run(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             f.read();\n\
             f.close();\n\
             f = new InputStream();\n\
             f.read();\n\
             f.close();\n\
             }",
            &builtin::iostreams(),
        );
        assert_eq!(v.site_class.len(), 2);
        assert!(v.suspects.is_empty(), "{v:?}");
        assert!(v.definite_failures.is_empty());
    }

    #[test]
    fn branch_dependent_state_is_not_definite() {
        // May fail (suspect) but not on every path: no W105 substrate.
        let v = run(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             if (?) { f.close(); }\n\
             f.read();\n\
             }",
            &builtin::iostreams(),
        );
        assert!(!v.suspects.is_empty(), "{v:?}");
        assert!(v.definite_failures.is_empty(), "{v:?}");
    }

    #[test]
    fn heap_edges_cover_component_links() {
        let v = run(
            "program P uses JDBC; void main() {\n\
             ConnectionManager cm = new ConnectionManager();\n\
             Connection con = cm.getConnection();\n\
             Statement st = cm.createStatement(con);\n\
             ResultSet rs = st.executeQuery(\"q\");\n\
             rs.close();\n\
             }",
            &builtin::jdbc(),
        );
        assert!(
            !v.heap_edges.is_empty(),
            "JDBC spec links statements to connections: {v:?}"
        );
    }

    #[test]
    fn unknown_method_is_an_error() {
        let program = parse_program(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             f.frobnicate();\n\
             }",
        )
        .unwrap();
        let cfg = Cfg::build(&program, "main").unwrap();
        let err = analyze_flow(&cfg, &builtin::iostreams()).unwrap_err();
        assert!(err.message.contains("frobnicate"), "{err}");
    }

    #[test]
    fn null_branch_refinement_empties_points_to() {
        // On the `f == null` branch the call has no receivers and must not
        // produce a suspect; the non-null branch is clean.
        let v = run(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             f.close();\n\
             if (f == null) { f.read(); }\n\
             }",
            &builtin::iostreams(),
        );
        assert!(v.suspects.is_empty(), "{v:?}");
        assert!(v.definite_failures.is_empty(), "{v:?}");
    }
}
