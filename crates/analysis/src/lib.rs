//! # hetsep-analysis
//!
//! The static pre-verification layer: a generic monotone [`dataflow`]
//! framework over the IR CFG, and lint passes that vet the three inputs of
//! a verification run *before* the expensive TVLA fixpoint starts:
//!
//! * [`lint_program`] — `W101` unreachable code, `W102` dead assignment,
//!   `W103` definitely-null receiver, `W104` unused variable;
//! * [`flow_lints`] — the second generation, built on the flow- and
//!   field-sensitive [`points_to_flow`] product analysis: `W105` definitely
//!   wrong typestate at a checked call, `W106` tracked reference escaping
//!   into a field nothing reads back;
//! * [`lint_strategy`] — `W111` checked class not covered (per
//!   `strategy::coverage` / Theorem 1), `W112` unreachable `on failure`
//!   stage, `W113` duplicate choice, `W114` dead `choose` clause, `W115`
//!   subsumed choice;
//! * [`lint_spec`] — `W121` field never referenced, `W122` `requires`
//!   clause the program can never trigger, `W123` unreachable typestate
//!   transition.
//!
//! All passes report through the unified [`Diagnostic`] type (re-exported
//! from `hetsep-ir`, the bottom of the crate DAG, so the front-end semantic
//! checker shares it): a stable `E0xx`/`W1xx` code, severity, message,
//! line/column span, and optional note, with a human renderer and an NDJSON
//! emitter mirroring the telemetry trace format.
//!
//! # Example
//!
//! ```
//! use hetsep_analysis::{lint_program, Severity};
//!
//! let src = "program P uses IOStreams; void main() {\n\
//!            InputStream f = null;\n\
//!            f.read();\n\
//!            }";
//! let program = hetsep_ir::parse_program(src).unwrap();
//! let cfg = hetsep_ir::Cfg::build(&program, "main").unwrap();
//! let diags = lint_program(&program, &cfg);
//! assert!(diags.iter().any(|d| d.code == "W103"));
//! assert!(diags.iter().all(|d| d.severity == Severity::Warning));
//! ```

pub mod dataflow;
pub mod flow_lints;
pub mod heap_components;
pub mod points_to_flow;
pub mod program_lints;
pub mod spec_lints;
pub mod strategy_lints;

pub use dataflow::{solve, DataflowProblem, Direction, Solution};
pub use hetsep_ir::diag::{sort_diagnostics, Diagnostic, Severity};
pub use program_lints::lint_program;
pub use spec_lints::lint_spec;
pub use strategy_lints::lint_strategy;

use hetsep_easl::Spec;
use hetsep_ir::{Cfg, Program};
use hetsep_strategy::Strategy;

/// Convenience driver: semantic checks (`E0xx`) plus every lint family that
/// applies to the supplied inputs, sorted for presentation and with columns
/// resolved against `source` when given.
///
/// When the semantic checker rejects the program (or the CFG cannot be
/// built), flow-sensitive lints are skipped — their results would be
/// meaningless — and only the errors are returned.
pub fn lint_all(
    program: &Program,
    source: Option<&str>,
    spec: Option<&Spec>,
    strategy: Option<&Strategy>,
) -> Vec<Diagnostic> {
    let mut diags = hetsep_ir::check::check_diagnostics(program);
    if diags.is_empty() {
        match Cfg::build(program, "main") {
            Ok(cfg) => {
                diags.extend(lint_program(program, &cfg));
                if let Some(spec) = spec {
                    diags.extend(flow_lints::lint_flow(&cfg, spec));
                    diags.extend(lint_spec(spec, &cfg));
                }
                if let (Some(strategy), Some(spec)) = (strategy, spec) {
                    diags.extend(lint_strategy(strategy, &cfg, spec));
                    diags.extend(flow_lints::lint_escapes(&cfg, spec, strategy));
                }
            }
            Err(e) => {
                diags.push(e.to_diagnostic());
            }
        }
    }
    if let Some(src) = source {
        for d in &mut diags {
            d.locate(src);
        }
    }
    sort_diagnostics(&mut diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_all_reports_semantic_errors_first_and_skips_flow_lints() {
        let src = "program P uses X; void main() { a = null; }";
        let p = hetsep_ir::parse_program(src).unwrap();
        let d = lint_all(&p, Some(src), None, None);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "E007");
        assert!(d[0].col > 0, "columns resolved: {d:?}");
    }

    #[test]
    fn lint_all_combines_families() {
        let src = "program P uses JDBC; void main() {\n\
                   ConnectionManager cm = new ConnectionManager();\n\
                   Connection con = cm.getConnection();\n\
                   Connection unused = null;\n\
                   Statement st = cm.createStatement(con);\n\
                   ResultSet rs = st.executeQuery(\"q\");\n\
                   while (rs.next()) {\n\
                   }\n}";
        let p = hetsep_ir::parse_program(src).unwrap();
        let spec = hetsep_easl::builtin::jdbc();
        let strategy =
            hetsep_strategy::parse_strategy("strategy S { choose some c : Connection(); }")
                .unwrap();
        let d = lint_all(&p, Some(src), Some(&spec), Some(&strategy));
        assert!(d.iter().any(|x| x.code == "W104"), "{d:?}"); // unused var
        assert!(d.iter().any(|x| x.code == "W111"), "{d:?}"); // uncovered classes
        assert!(d.iter().all(|x| x.severity == Severity::Warning));
    }

    #[test]
    fn lint_all_reports_cfg_errors_with_stable_codes() {
        let src = "program P uses X; void loop() { loop(); } void main() { loop(); }";
        let p = hetsep_ir::parse_program(src).unwrap();
        let d = lint_all(&p, Some(src), None, None);
        let rec = d.iter().find(|x| x.code == "E016").unwrap_or_else(|| panic!("{d:?}"));
        assert!(rec.message.contains("recursive"), "{rec:?}");
        assert!(rec.col > 0, "span resolved against source: {rec:?}");
        let rendered = rec.render(Some(src));
        assert!(rendered.contains("error[E016]"), "{rendered}");
        assert!(rendered.lines().last().unwrap().contains('^'), "{rendered}");
    }
}
