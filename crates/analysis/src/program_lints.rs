//! Program lints (`W101`–`W104`).
//!
//! | code | lint |
//! |------|------|
//! | W101 | unreachable code (statements after `return`, unreachable CFG nodes) |
//! | W102 | dead assignment (value written by an `=` statement is never read) |
//! | W103 | use of a definitely-null receiver |
//! | W104 | variable never used |
//!
//! W102 and W103 are instances of the generic dataflow framework (a
//! backward liveness analysis and a forward nullness analysis); W101 and
//! W104 combine AST walks with CFG reachability. All four are tuned to be
//! quiet on idiomatic benchmark code:
//!
//! * W102 only fires on assignment *statements* (`x = e;`), never on the
//!   moves the CFG lowering introduces (declarations, parameter binding,
//!   return-value plumbing), and only when every inlined copy of the
//!   statement is dead.
//! * W104 exempts variables whose every write is a constructor or library
//!   call — `Element e = it.next();` evaluates `next()` for its effect and
//!   checks; binding the ignored result is idiomatic.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use hetsep_ir::ast::{Arg, Block, Cond, Expr, Place, Program, Stmt};
use hetsep_ir::cfg::{Cfg, CfgEdge, CfgOp};
use hetsep_ir::diag::Diagnostic;

use crate::dataflow::{solve, DataflowProblem, Direction};

/// Runs all program lints. `cfg` must be built from `program` at `main`.
pub fn lint_program(program: &Program, cfg: &Cfg) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    unreachable_code(program, cfg, &mut diags);
    dead_assignments(program, cfg, &mut diags);
    null_receivers(cfg, &mut diags);
    unused_variables(program, &mut diags);
    hetsep_ir::diag::sort_diagnostics(&mut diags);
    diags
}

/// Strips the `proc@N::` inline-frame prefix from a CFG variable name.
fn display_name(var: &str) -> &str {
    var.rsplit("::").next().unwrap_or(var)
}

// ---------------------------------------------------------------- W101 ----

fn unreachable_code(program: &Program, cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    let mut lines: BTreeSet<u32> = BTreeSet::new();

    // AST side: statements after a definitely-returning statement never
    // reach the CFG (the lowering drops them), so find them syntactically.
    for m in &program.methods {
        block_tail_unreachable(&m.body, &mut lines);
    }

    // CFG side: nodes unreachable from the entry whose outgoing edges carry
    // real operations (e.g. code after an `if` whose branches both return).
    let mut reachable = vec![false; cfg.node_count()];
    let mut stack = vec![cfg.entry()];
    reachable[cfg.entry()] = true;
    while let Some(node) = stack.pop() {
        for &eix in cfg.out_edges(node) {
            let to = cfg.edges()[eix].to;
            if !reachable[to] {
                reachable[to] = true;
                stack.push(to);
            }
        }
    }
    for edge in cfg.edges() {
        if !reachable[edge.from] && !matches!(edge.op, CfgOp::Nop) && edge.line > 0 {
            lines.insert(edge.line);
        }
    }

    for line in lines {
        diags.push(
            Diagnostic::warning("W101", "unreachable code", line)
                .with_note("no execution path reaches this statement"),
        );
    }
}

/// Whether the block definitely returns on every path, recording the lines
/// of statements that follow a definitely-returning statement.
fn block_tail_unreachable(block: &Block, lines: &mut BTreeSet<u32>) -> bool {
    let mut returned = false;
    for stmt in &block.stmts {
        if returned {
            lines.insert(stmt.line());
            continue;
        }
        returned = match stmt {
            Stmt::Return { .. } => true,
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                let t = block_tail_unreachable(then_branch, lines);
                let e = block_tail_unreachable(else_branch, lines);
                t && e && !else_branch.stmts.is_empty()
            }
            Stmt::While { body, .. } => {
                // The loop may run zero times; its body never makes the
                // tail unreachable, but lint inside it.
                block_tail_unreachable(body, lines);
                false
            }
            _ => false,
        };
    }
    returned
}

// ---------------------------------------------------------------- W102 ----

/// Classic backward variable liveness over CFG edges.
struct Liveness;

impl DataflowProblem for Liveness {
    type Fact = BTreeSet<String>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn transfer(&self, edge: &CfgEdge, fact: &Self::Fact) -> Self::Fact {
        let mut out = fact.clone();
        if let Some(def) = def_of(&edge.op) {
            out.remove(def);
        }
        for u in uses_of(&edge.op) {
            out.insert(u);
        }
        out
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
        let before = into.len();
        into.extend(from.iter().cloned());
        into.len() != before
    }
}

/// The variable an operation writes, if any.
fn def_of(op: &CfgOp) -> Option<&str> {
    match op {
        CfgOp::AssignNull { dst }
        | CfgOp::AssignVar { dst, .. }
        | CfgOp::LoadField { dst, .. }
        | CfgOp::LoadBoolField { dst, .. }
        | CfgOp::AssignBool { dst, .. } => Some(dst),
        CfgOp::New { dst: Some(dst), .. } => Some(dst),
        CfgOp::CallLib {
            result: Some(dst), ..
        } => Some(dst),
        _ => None,
    }
}

/// The variables an operation reads.
fn uses_of(op: &CfgOp) -> Vec<String> {
    use hetsep_ir::cfg::BoolRhs;
    fn args_of(args: &[Arg], uses: &mut Vec<String>) {
        for a in args {
            if let Arg::Var(v) = a {
                uses.push(v.clone());
            }
        }
    }
    let mut uses = Vec::new();
    match op {
        CfgOp::Nop | CfgOp::AssignNull { .. } => {}
        CfgOp::AssignVar { src, .. }
        | CfgOp::LoadField { src, .. }
        | CfgOp::LoadBoolField { src, .. } => uses.push(src.clone()),
        CfgOp::StoreField { dst, src, .. } => {
            uses.push(dst.clone());
            if let Some(s) = src {
                uses.push(s.clone());
            }
        }
        CfgOp::StoreBoolField { dst, value, .. } => {
            uses.push(dst.clone());
            if let BoolRhs::Var(v) = value {
                uses.push(v.clone());
            }
        }
        CfgOp::New { args, .. } => args_of(args, &mut uses),
        CfgOp::CallLib { recv, args, .. } => {
            uses.push(recv.clone());
            args_of(args, &mut uses);
        }
        CfgOp::AssignBool { value, .. } => {
            if let BoolRhs::Var(v) = value {
                uses.push(v.clone());
            }
        }
        CfgOp::Assume { cond, .. } => match cond {
            Cond::Nondet => {}
            Cond::RefEq { lhs, rhs, .. } => {
                uses.push(lhs.clone());
                uses.push(rhs.clone());
            }
            Cond::NullCheck { var, .. } | Cond::BoolVar { var, .. } => uses.push(var.clone()),
            Cond::CallBool { recv, args, .. } => {
                uses.push(recv.clone());
                args_of(args, &mut uses);
            }
        },
    }
    uses
}

fn dead_assignments(program: &Program, cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    // Only `x = e;` assignment statements are candidates; everything else
    // the lowering emits (declarations, parameter binding, return plumbing)
    // is compiler-introduced and not the user's to fix.
    let mut candidates: BTreeSet<(u32, String)> = BTreeSet::new();
    for m in &program.methods {
        collect_assign_targets(&m.body, &mut candidates);
    }
    if candidates.is_empty() {
        return;
    }

    let live = solve(cfg, &Liveness);
    // line/name → every matching edge must be a dead pure move. A statement
    // inlined several times only fires when dead in every copy.
    let mut verdict: BTreeMap<(u32, String), bool> = BTreeMap::new();
    for edge in cfg.edges() {
        let Some(def) = def_of(&edge.op) else { continue };
        let pure = matches!(
            edge.op,
            CfgOp::AssignNull { .. }
                | CfgOp::AssignVar { .. }
                | CfgOp::AssignBool { .. }
                | CfgOp::LoadField { .. }
                | CfgOp::LoadBoolField { .. }
        );
        let key = (edge.line, display_name(def).to_owned());
        if !candidates.contains(&key) {
            continue;
        }
        let dead = pure
            && live
                .at(edge.to)
                .map(|fact| !fact.contains(def))
                .unwrap_or(false);
        *verdict.entry(key).or_insert(true) &= dead;
    }
    for ((line, name), dead) in verdict {
        if dead {
            diags.push(
                Diagnostic::warning(
                    "W102",
                    format!("value assigned to `{name}` is never read"),
                    line,
                )
                .with_snippet(name)
                .with_note("the assignment can be removed"),
            );
        }
    }
}

fn collect_assign_targets(block: &Block, out: &mut BTreeSet<(u32, String)>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Assign {
                target: Place::Var(v),
                line,
                ..
            } => {
                out.insert((*line, v.clone()));
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_assign_targets(then_branch, out);
                collect_assign_targets(else_branch, out);
            }
            Stmt::While { body, .. } => collect_assign_targets(body, out),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------- W103 ----

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Nullness {
    Null,
    NonNull,
    Top,
}

impl Nullness {
    fn join(self, other: Nullness) -> Nullness {
        if self == other {
            self
        } else {
            Nullness::Top
        }
    }
}

/// Forward nullness with `Assume` refinement on null checks.
struct NullnessAnalysis;

impl DataflowProblem for NullnessAnalysis {
    type Fact = BTreeMap<String, Nullness>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Self::Fact {
        BTreeMap::new()
    }

    fn transfer(&self, edge: &CfgEdge, fact: &Self::Fact) -> Self::Fact {
        let mut out = fact.clone();
        match &edge.op {
            CfgOp::AssignNull { dst } => {
                out.insert(dst.clone(), Nullness::Null);
            }
            CfgOp::AssignVar { dst, src } => {
                let v = fact.get(src).copied().unwrap_or(Nullness::Top);
                out.insert(dst.clone(), v);
            }
            CfgOp::New { dst: Some(dst), .. } => {
                out.insert(dst.clone(), Nullness::NonNull);
            }
            CfgOp::LoadField { dst, .. } => {
                out.insert(dst.clone(), Nullness::Top);
            }
            CfgOp::CallLib {
                result: Some(dst), ..
            } => {
                out.insert(dst.clone(), Nullness::Top);
            }
            CfgOp::Assume {
                cond: Cond::NullCheck { var, negated },
                polarity,
            } => {
                let is_null = if *negated { !*polarity } else { *polarity };
                out.insert(
                    var.clone(),
                    if is_null {
                        Nullness::Null
                    } else {
                        Nullness::NonNull
                    },
                );
            }
            _ => {}
        }
        out
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
        let mut changed = false;
        for (k, v) in from {
            match into.get(k) {
                // Absent = not assigned on the other path yet (bottom).
                None => {
                    into.insert(k.clone(), *v);
                    changed = true;
                }
                Some(old) => {
                    let merged = old.join(*v);
                    if merged != *old {
                        into.insert(k.clone(), merged);
                        changed = true;
                    }
                }
            }
        }
        changed
    }
}

fn null_receivers(cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    let sol = solve(cfg, &NullnessAnalysis);
    let mut seen: BTreeSet<(u32, String, String)> = BTreeSet::new();
    for edge in cfg.edges() {
        let Some(fact) = sol.at(edge.from) else {
            continue;
        };
        let (base, action): (&str, String) = match &edge.op {
            CfgOp::CallLib { recv, method, .. } => (recv, format!("call to `{method}`")),
            CfgOp::LoadField { src, field, .. } | CfgOp::LoadBoolField { src, field, .. } => {
                (src, format!("read of field `{field}`"))
            }
            CfgOp::StoreField { dst, field, .. } | CfgOp::StoreBoolField { dst, field, .. } => {
                (dst, format!("write to field `{field}`"))
            }
            _ => continue,
        };
        if fact.get(base) == Some(&Nullness::Null) {
            let name = display_name(base).to_owned();
            if seen.insert((edge.line, name.clone(), action.clone())) {
                diags.push(
                    Diagnostic::warning(
                        "W103",
                        format!("{action} on `{name}`, which is definitely null here"),
                        edge.line,
                    )
                    .with_snippet(name)
                    .with_note("this operation always fails at run time"),
                );
            }
        }
    }
}

// ---------------------------------------------------------------- W104 ----

#[derive(Default)]
struct UseCollector {
    reads: HashSet<String>,
    effectful_writes: HashSet<String>,
}

fn unused_variables(program: &Program, diags: &mut Vec<Diagnostic>) {
    for m in &program.methods {
        let mut decls: Vec<(String, u32, bool)> = Vec::new(); // name, line, effectful init
        let mut uses = UseCollector::default();
        collect_uses(&m.body, &mut decls, &mut uses);
        for (name, line, effectful) in decls {
            if uses.reads.contains(&name)
                || uses.effectful_writes.contains(&name)
                || effectful
            {
                continue;
            }
            diags.push(
                Diagnostic::warning("W104", format!("variable `{name}` is never used"), line)
                    .with_snippet(name),
            );
        }
    }
}

fn collect_uses(block: &Block, decls: &mut Vec<(String, u32, bool)>, uses: &mut UseCollector) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::VarDecl { name, init, line, .. } => {
                let effectful = matches!(init, Some(Expr::New { .. } | Expr::Call { .. }));
                decls.push((name.clone(), *line, effectful));
                if let Some(e) = init {
                    expr_reads(e, uses);
                }
            }
            Stmt::Assign { target, value, .. } => {
                expr_reads(value, uses);
                match target {
                    Place::Var(v) => {
                        if matches!(value, Expr::New { .. } | Expr::Call { .. }) {
                            uses.effectful_writes.insert(v.clone());
                        }
                    }
                    Place::Field(v, _) => {
                        uses.reads.insert(v.clone());
                    }
                }
            }
            Stmt::ExprStmt { expr, .. } => expr_reads(expr, uses),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                cond_reads(cond, uses);
                collect_uses(then_branch, decls, uses);
                collect_uses(else_branch, decls, uses);
            }
            Stmt::While { cond, body, .. } => {
                cond_reads(cond, uses);
                collect_uses(body, decls, uses);
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    uses.reads.insert(v.clone());
                }
            }
        }
    }
}

fn expr_reads(expr: &Expr, uses: &mut UseCollector) {
    match expr {
        Expr::Null | Expr::True | Expr::False | Expr::Nondet => {}
        Expr::Var(v) => {
            uses.reads.insert(v.clone());
        }
        Expr::FieldAccess(v, _) => {
            uses.reads.insert(v.clone());
        }
        Expr::New { args, .. } => args_read(args, uses),
        Expr::Call { recv, args, .. } => {
            if let Some(r) = recv {
                uses.reads.insert(r.clone());
            }
            args_read(args, uses);
        }
    }
}

fn cond_reads(cond: &Cond, uses: &mut UseCollector) {
    match cond {
        Cond::Nondet => {}
        Cond::RefEq { lhs, rhs, .. } => {
            uses.reads.insert(lhs.clone());
            uses.reads.insert(rhs.clone());
        }
        Cond::NullCheck { var, .. } | Cond::BoolVar { var, .. } => {
            uses.reads.insert(var.clone());
        }
        Cond::CallBool { recv, args, .. } => {
            uses.reads.insert(recv.clone());
            args_read(args, uses);
        }
    }
}

fn args_read(args: &[Arg], uses: &mut UseCollector) {
    for a in args {
        if let Arg::Var(v) = a {
            uses.reads.insert(v.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsep_ir::parse_program;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let p = parse_program(src).unwrap();
        let cfg = Cfg::build(&p, "main").unwrap();
        lint_program(&p, &cfg)
    }

    fn codes_at(diags: &[Diagnostic]) -> Vec<(&'static str, u32)> {
        diags.iter().map(|d| (d.code, d.line)).collect()
    }

    #[test]
    fn clean_program_has_no_diagnostics() {
        let d = lint(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             f.read();\n\
             f.close();\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn w101_statement_after_return() {
        let d = lint(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             return;\n\
             f.read();\n}",
        );
        assert!(codes_at(&d).contains(&("W101", 4)), "{d:?}");
    }

    #[test]
    fn w101_after_if_where_both_branches_return() {
        let d = lint(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             if (?) { return; } else { return; }\n\
             f.read();\n}",
        );
        assert!(codes_at(&d).contains(&("W101", 4)), "{d:?}");
    }

    #[test]
    fn w102_dead_assignment() {
        let d = lint(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             InputStream g = new InputStream();\n\
             f = g;\n\
             f = g;\n\
             f.read();\n}",
        );
        // Line 4's store is overwritten by line 5 before any read.
        assert!(codes_at(&d).contains(&("W102", 4)), "{d:?}");
        assert!(!codes_at(&d).contains(&("W102", 5)), "{d:?}");
    }

    #[test]
    fn w102_quiet_on_loop_carried_assignment() {
        let d = lint(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             InputStream g = new InputStream();\n\
             while (?) {\n\
             f.read();\n\
             f = g;\n\
             }\n}",
        );
        assert!(
            !codes_at(&d).iter().any(|(c, _)| *c == "W102"),
            "loop-carried store is live: {d:?}"
        );
    }

    #[test]
    fn w103_definitely_null_receiver() {
        let d = lint(
            "program P uses IOStreams; void main() {\n\
             InputStream f = null;\n\
             f.read();\n}",
        );
        assert!(codes_at(&d).contains(&("W103", 3)), "{d:?}");
    }

    #[test]
    fn w103_respects_null_check_refinement() {
        let d = lint(
            "program P uses IOStreams; void main() {\n\
             InputStream f = null;\n\
             if (?) { f = new InputStream(); }\n\
             if (f != null) { f.read(); }\n}",
        );
        assert!(
            !codes_at(&d).iter().any(|(c, _)| *c == "W103"),
            "guarded use: {d:?}"
        );
    }

    #[test]
    fn w103_quiet_on_maybe_null() {
        let d = lint(
            "program P uses IOStreams; void main() {\n\
             InputStream f = null;\n\
             if (?) { f = new InputStream(); }\n\
             f.read();\n}",
        );
        assert!(
            !codes_at(&d).iter().any(|(c, _)| *c == "W103"),
            "maybe-null is not definitely-null: {d:?}"
        );
    }

    #[test]
    fn w104_unused_variable() {
        let d = lint(
            "program P uses IOStreams; void main() {\n\
             InputStream f = null;\n\
             InputStream g = new InputStream();\n\
             g.read();\n}",
        );
        let w104: Vec<_> = d.iter().filter(|x| x.code == "W104").collect();
        assert_eq!(w104.len(), 1, "{d:?}");
        assert_eq!(w104[0].line, 2);
        assert!(w104[0].message.contains("`f`"));
    }

    #[test]
    fn w104_exempts_call_result_binding() {
        let d = lint(
            "program P uses CMP; void main() {\n\
             Collection c = new Collection();\n\
             Iterator it = c.iterator();\n\
             while (it.hasNext()) {\n\
             Element e = it.next();\n\
             }\n}",
        );
        assert!(
            !codes_at(&d).iter().any(|(c, _)| *c == "W104"),
            "`e` binds an effectful call result: {d:?}"
        );
    }

    #[test]
    fn diagnostics_are_position_sorted() {
        let d = lint(
            "program P uses IOStreams; void main() {\n\
             InputStream u = null;\n\
             InputStream f = null;\n\
             f.read();\n}",
        );
        let lines: Vec<u32> = d.iter().map(|x| x.line).collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "{d:?}");
    }
}
