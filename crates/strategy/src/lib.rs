//! # hetsep-strategy
//!
//! The separation-strategy specification language of paper §3. A strategy is
//! a method for choosing a set of objects; a set of chosen objects identifies
//! a verification subproblem in which checking is restricted to the chosen
//! objects.
//!
//! An *atomic* strategy is a sequence of choice operations
//!
//! ```text
//! choose (some|all) [failing] <var> : <Type>(<params>) [/ <param> == <var> && ...];
//! ```
//!
//! evaluated on entry to the named constructor: `choose some` selects at most
//! one eligible object non-deterministically; `choose all` selects every
//! eligible object. An *incremental* strategy is a sequence of atomic
//! strategies separated by `on failure`, each of which may restrict
//! attention to objects allocated at sites that failed the previous stage
//! (`failing`).
//!
//! The crate provides the [`parser`], the Theorem-1 [`coverage`] check, the
//! [`instrument`]ation plan consumed by the verification engine, and
//! [`builtin`] strategies for the shipped specifications.
//!
//! # Example
//!
//! ```
//! let s = hetsep_strategy::parse_strategy(
//!     "strategy Single {\n\
//!        choose some c : Connection();\n\
//!        choose all s : Statement(x) / x == c;\n\
//!        choose all r : ResultSet(y) / y == s;\n\
//!      }",
//! )
//! .unwrap();
//! assert_eq!(s.stages.len(), 1);
//! assert_eq!(s.stages[0].choices.len(), 3);
//! ```

pub mod ast;
pub mod builtin;
pub mod coverage;
pub mod instrument;
pub mod parser;

pub use ast::{AtomicStrategy, ChoiceMode, ChoiceOp, Strategy};
pub use coverage::{covered_classes, incremental_covers, stage_reexamines, theorem1_applies};
pub use instrument::{ChoicePlan, InstrumentPlan};
pub use parser::{parse_strategy, StrategyParseError};
