//! Parser for the strategy specification language.

use std::fmt;

use crate::ast::{AtomicStrategy, ChoiceMode, ChoiceOp, Strategy};

/// A parse or validation error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyParseError {
    /// Explanation.
    pub message: String,
    /// 1-based line.
    pub line: u32,
}

impl fmt::Display for StrategyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "strategy error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for StrategyParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Colon,
    Semi,
    Comma,
    Slash,
    EqEq,
    AndAnd,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::AndAnd => write!(f, "`&&`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, u32)>, StrategyParseError> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1u32;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push((Tok::Ident(chars[start..i].iter().collect()), line));
            }
            '=' if chars.get(i + 1) == Some(&'=') => {
                out.push((Tok::EqEq, line));
                i += 2;
            }
            '&' if chars.get(i + 1) == Some(&'&') => {
                out.push((Tok::AndAnd, line));
                i += 2;
            }
            _ => {
                let t = match c {
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    ':' => Tok::Colon,
                    ';' => Tok::Semi,
                    ',' => Tok::Comma,
                    '/' => Tok::Slash,
                    other => {
                        return Err(StrategyParseError {
                            message: format!("unexpected character {other:?}"),
                            line,
                        })
                    }
                };
                out.push((t, line));
                i += 1;
            }
        }
    }
    out.push((Tok::Eof, line));
    Ok(out)
}

struct P {
    toks: Vec<(Tok, u32)>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, m: impl Into<String>) -> Result<T, StrategyParseError> {
        Err(StrategyParseError {
            message: m.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, t: Tok) -> Result<(), StrategyParseError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {t}, found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, StrategyParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn kw(&mut self, w: &str) -> Result<(), StrategyParseError> {
        match self.peek().clone() {
            Tok::Ident(s) if s == w => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{w}`, found {other}")),
        }
    }

    fn strategy(&mut self) -> Result<Strategy, StrategyParseError> {
        self.kw("strategy")?;
        let name = self.ident()?;
        let mut stages = vec![self.stage()?];
        while matches!(self.peek(), Tok::Ident(s) if s == "on") {
            self.bump();
            self.kw("failure")?;
            stages.push(self.stage()?);
        }
        if *self.peek() != Tok::Eof {
            return self.err(format!("unexpected {} after strategy", self.peek()));
        }
        Ok(Strategy { name, stages })
    }

    fn stage(&mut self) -> Result<AtomicStrategy, StrategyParseError> {
        self.expect(Tok::LBrace)?;
        let mut choices = Vec::new();
        while *self.peek() != Tok::RBrace {
            choices.push(self.choice()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(AtomicStrategy { choices })
    }

    fn choice(&mut self) -> Result<ChoiceOp, StrategyParseError> {
        self.kw("choose")?;
        let mode = match self.ident()?.as_str() {
            "some" => ChoiceMode::Some,
            "all" => ChoiceMode::All,
            other => return self.err(format!("expected `some` or `all`, found `{other}`")),
        };
        let mut failing = false;
        let mut var = self.ident()?;
        if var == "failing" {
            failing = true;
            var = self.ident()?;
        }
        self.expect(Tok::Colon)?;
        let class = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                params.push(self.ident()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        let mut equations = Vec::new();
        if *self.peek() == Tok::Slash {
            self.bump();
            loop {
                let lhs = self.ident()?;
                self.expect(Tok::EqEq)?;
                let rhs = self.ident()?;
                equations.push((lhs, rhs));
                if *self.peek() == Tok::AndAnd {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::Semi)?;
        Ok(ChoiceOp {
            mode,
            failing,
            var,
            class,
            params,
            equations,
        })
    }
}

/// Parses and validates a strategy.
///
/// Validation rules: strategy variables are unique per stage; each equation's
/// left side is a parameter of its own choice and its right side is a
/// variable bound by an *earlier* choice of the same stage; `failing` only
/// appears in stages after the first.
///
/// # Errors
///
/// Returns the first syntactic or validation error encountered.
pub fn parse_strategy(src: &str) -> Result<Strategy, StrategyParseError> {
    let toks = lex(src)?;
    let strategy = P { toks, pos: 0 }.strategy()?;
    for (stage_ix, stage) in strategy.stages.iter().enumerate() {
        let mut bound: Vec<&str> = Vec::new();
        for op in &stage.choices {
            if bound.contains(&op.var.as_str()) {
                return Err(StrategyParseError {
                    message: format!("strategy variable `{}` bound twice", op.var),
                    line: 0,
                });
            }
            if op.failing && stage_ix == 0 {
                return Err(StrategyParseError {
                    message: format!(
                        "`failing` on `{}` is meaningless in the first stage",
                        op.var
                    ),
                    line: 0,
                });
            }
            for (param, zvar) in &op.equations {
                if !op.params.contains(param) {
                    return Err(StrategyParseError {
                        message: format!(
                            "equation references `{param}`, which is not a parameter of `{}`",
                            op.var
                        ),
                        line: 0,
                    });
                }
                if !bound.contains(&zvar.as_str()) {
                    return Err(StrategyParseError {
                        message: format!(
                            "equation references `{zvar}`, which is not bound by an earlier choice"
                        ),
                        line: 0,
                    });
                }
            }
            bound.push(&op.var);
        }
    }
    Ok(strategy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_choice_strategy() {
        let s = parse_strategy(
            r#"
strategy Single {
    choose some c : Connection();
    choose all s : Statement(x) / x == c;
    choose all r : ResultSet(y) / y == s;
}
"#,
        )
        .unwrap();
        assert_eq!(s.name, "Single");
        assert!(!s.is_incremental());
        let ops = &s.stages[0].choices;
        assert_eq!(ops[0].mode, ChoiceMode::Some);
        assert_eq!(ops[1].mode, ChoiceMode::All);
        assert_eq!(ops[1].equations, vec![("x".into(), "c".into())]);
    }

    #[test]
    fn parses_incremental_strategy_with_failing() {
        let s = parse_strategy(
            r#"
strategy Inc {
    choose some r : ResultSet(y);
}
on failure {
    choose some s : Statement(x);
    choose some failing r : ResultSet(y) / y == s;
}
on failure {
    choose some c : Connection();
    choose some failing s : Statement(x) / x == c;
    choose some failing r : ResultSet(y) / y == s;
}
"#,
        )
        .unwrap();
        assert!(s.is_incremental());
        assert_eq!(s.stages.len(), 3);
        assert!(s.stages[1].choices[1].failing);
        assert!(!s.stages[1].choices[0].failing);
    }

    #[test]
    fn rejects_duplicate_variable() {
        let err = parse_strategy(
            "strategy S { choose some c : A(); choose some c : B(); }",
        )
        .unwrap_err();
        assert!(err.message.contains("bound twice"), "{}", err.message);
    }

    #[test]
    fn rejects_unknown_equation_param() {
        let err = parse_strategy(
            "strategy S { choose some c : A(); choose all s : B(x) / w == c; }",
        )
        .unwrap_err();
        assert!(err.message.contains("not a parameter"), "{}", err.message);
    }

    #[test]
    fn rejects_forward_reference() {
        let err = parse_strategy(
            "strategy S { choose all s : B(x) / x == c; choose some c : A(); }",
        )
        .unwrap_err();
        assert!(
            err.message.contains("not bound by an earlier choice"),
            "{}",
            err.message
        );
    }

    #[test]
    fn rejects_failing_in_first_stage() {
        let err = parse_strategy("strategy S { choose some failing c : A(); }").unwrap_err();
        assert!(err.message.contains("meaningless"), "{}", err.message);
    }

    #[test]
    fn conjunction_equations_parse() {
        let s = parse_strategy(
            "strategy S { choose some a : A(); choose some b : B(); choose all c : C(x, y) / x == a && y == b; }",
        )
        .unwrap();
        assert_eq!(s.stages[0].choices[2].equations.len(), 2);
    }

    #[test]
    fn error_reports_position() {
        let err = parse_strategy("strategy S { choose maybe c : A(); }").unwrap_err();
        assert!(err.message.contains("expected `some` or `all`"), "{}", err.message);
    }
}
