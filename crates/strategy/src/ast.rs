//! Abstract syntax of separation strategies.

use std::fmt;

/// Whether a choice operation selects one or all eligible objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChoiceMode {
    /// `choose some` — non-deterministically select at most one eligible
    /// object over the whole execution.
    Some,
    /// `choose all` — select every eligible object.
    All,
}

impl fmt::Display for ChoiceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChoiceMode::Some => write!(f, "some"),
            ChoiceMode::All => write!(f, "all"),
        }
    }
}

/// One choice operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoiceOp {
    /// Selection mode.
    pub mode: ChoiceMode,
    /// Restrict eligibility to objects allocated at sites that failed the
    /// previous stage of an incremental strategy (`choose some failing x`).
    pub failing: bool,
    /// The strategy variable bound by this operation.
    pub var: String,
    /// The constructor (class) the operation watches.
    pub class: String,
    /// Names of the constructor's parameters usable in the condition.
    pub params: Vec<String>,
    /// Condition: a conjunction of equations `param == strategy-var`, where
    /// the strategy variable was bound by an earlier choice operation.
    pub equations: Vec<(String, String)>,
}

impl fmt::Display for ChoiceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "choose {} ", self.mode)?;
        if self.failing {
            write!(f, "failing ")?;
        }
        write!(f, "{} : {}({})", self.var, self.class, self.params.join(", "))?;
        if !self.equations.is_empty() {
            let eqs: Vec<String> = self
                .equations
                .iter()
                .map(|(p, z)| format!("{p} == {z}"))
                .collect();
            write!(f, " / {}", eqs.join(" && "))?;
        }
        Ok(())
    }
}

/// A sequence of choice operations forming one decomposition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AtomicStrategy {
    /// Choice operations in binding order.
    pub choices: Vec<ChoiceOp>,
}

impl AtomicStrategy {
    /// Looks up a choice operation by its bound variable.
    pub fn choice(&self, var: &str) -> Option<&ChoiceOp> {
        self.choices.iter().find(|c| c.var == var)
    }

    /// Classes that have a choice operation.
    pub fn chosen_classes(&self) -> Vec<&str> {
        self.choices.iter().map(|c| c.class.as_str()).collect()
    }
}

/// A (possibly incremental) separation strategy: a sequence of atomic
/// strategies tried until one fully verifies the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Strategy {
    /// Strategy name.
    pub name: String,
    /// Stages in trial order; a single stage means a plain atomic strategy.
    pub stages: Vec<AtomicStrategy>,
}

impl Strategy {
    /// Whether this is an incremental strategy (more than one stage).
    pub fn is_incremental(&self) -> bool {
        self.stages.len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_shape() {
        let op = ChoiceOp {
            mode: ChoiceMode::All,
            failing: false,
            var: "s".into(),
            class: "Statement".into(),
            params: vec!["x".into()],
            equations: vec![("x".into(), "c".into())],
        };
        assert_eq!(op.to_string(), "choose all s : Statement(x) / x == c");
        let some = ChoiceOp {
            mode: ChoiceMode::Some,
            failing: true,
            var: "r".into(),
            class: "ResultSet".into(),
            params: vec!["y".into()],
            equations: vec![],
        };
        assert_eq!(some.to_string(), "choose some failing r : ResultSet(y)");
    }

    #[test]
    fn atomic_lookups() {
        let a = AtomicStrategy {
            choices: vec![ChoiceOp {
                mode: ChoiceMode::Some,
                failing: false,
                var: "c".into(),
                class: "Connection".into(),
                params: vec![],
                equations: vec![],
            }],
        };
        assert!(a.choice("c").is_some());
        assert!(a.choice("z").is_none());
        assert_eq!(a.chosen_classes(), vec!["Connection"]);
    }
}
