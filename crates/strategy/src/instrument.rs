//! Instrumentation plans.
//!
//! A strategy stage is realized by instrumenting the analysis vocabulary with
//! the predicates of paper Table 2: `chosen[x]` per choice operation,
//! `wasChosen[x]()` for `choose some` operations, the aggregate `chosen`, and
//! the abstraction-directing `relevant`. The [`InstrumentPlan`] is the
//! declarative description of that instrumentation; the verification engine
//! (`hetsep-core`) registers the predicates and wires the constructor-entry
//! choice logic from it.

use crate::ast::{AtomicStrategy, ChoiceMode, ChoiceOp};

/// Plan for one choice operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoicePlan {
    /// The underlying choice operation.
    pub op: ChoiceOp,
    /// Name of the `chosen[x]` unary predicate.
    pub chosen_pred: String,
    /// Name of the `wasChosen[x]` nullary predicate (only for `choose some`).
    pub was_chosen_pred: Option<String>,
    /// Equations resolved to `(constructor parameter index, earlier choice
    /// index)` pairs.
    pub resolved_equations: Vec<(usize, usize)>,
}

/// Plan for one atomic strategy stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrumentPlan {
    /// Per-choice plans, in binding order.
    pub choices: Vec<ChoicePlan>,
}

impl InstrumentPlan {
    /// Builds the plan for a stage.
    ///
    /// # Panics
    ///
    /// Panics if the stage's equations are unresolvable — impossible for
    /// strategies produced by [`crate::parse_strategy`], which validates
    /// them.
    pub fn for_stage(stage: &AtomicStrategy) -> InstrumentPlan {
        let mut choices: Vec<ChoicePlan> = Vec::new();
        for op in &stage.choices {
            let resolved_equations = op
                .equations
                .iter()
                .map(|(param, zvar)| {
                    let pix = op
                        .params
                        .iter()
                        .position(|p| p == param)
                        .expect("validated: equation lhs is a parameter");
                    let zix = stage
                        .choices
                        .iter()
                        .position(|c| &c.var == zvar)
                        .expect("validated: equation rhs is an earlier choice");
                    (pix, zix)
                })
                .collect();
            choices.push(ChoicePlan {
                chosen_pred: format!("chosen[{}]", op.var),
                was_chosen_pred: (op.mode == ChoiceMode::Some)
                    .then(|| format!("wasChosen[{}]", op.var)),
                resolved_equations,
                op: op.clone(),
            });
        }
        InstrumentPlan { choices }
    }

    /// Plans watching a given class's constructor.
    pub fn choices_for_class(&self, class: &str) -> Vec<&ChoicePlan> {
        self.choices.iter().filter(|c| c.op.class == class).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_strategy;

    #[test]
    fn plan_names_predicates_like_the_paper() {
        let s = parse_strategy(
            r#"
strategy Single {
    choose some c : Connection();
    choose all s : Statement(x) / x == c;
    choose all r : ResultSet(y) / y == s;
}
"#,
        )
        .unwrap();
        let plan = InstrumentPlan::for_stage(&s.stages[0]);
        assert_eq!(plan.choices[0].chosen_pred, "chosen[c]");
        assert_eq!(
            plan.choices[0].was_chosen_pred.as_deref(),
            Some("wasChosen[c]")
        );
        assert_eq!(plan.choices[1].chosen_pred, "chosen[s]");
        assert_eq!(plan.choices[1].was_chosen_pred, None, "`all` needs no wasChosen");
        assert_eq!(plan.choices[1].resolved_equations, vec![(0, 0)]);
        assert_eq!(plan.choices[2].resolved_equations, vec![(0, 1)]);
    }

    #[test]
    fn choices_for_class_filters() {
        let s = parse_strategy(
            "strategy S { choose some a : A(); choose some b : B(); }",
        )
        .unwrap();
        let plan = InstrumentPlan::for_stage(&s.stages[0]);
        assert_eq!(plan.choices_for_class("A").len(), 1);
        assert_eq!(plan.choices_for_class("C").len(), 0);
    }
}
