//! Built-in strategies for the shipped specifications (paper §3).

use crate::ast::Strategy;
use crate::parser::parse_strategy;

/// The *single choice* JDBC strategy: separation at the level of a
/// `Connection` (one subproblem per connection, with all of its statements
/// and result sets).
pub const JDBC_SINGLE: &str = r#"
strategy JdbcSingle {
    choose some c : Connection();
    choose all s : Statement(x) / x == c;
    choose all r : ResultSet(y) / y == s;
}
"#;

/// The *multiple choice* JDBC strategy: one subproblem per matching
/// (connection, statement, result-set) triple.
pub const JDBC_MULTI: &str = r#"
strategy JdbcMulti {
    choose some c : Connection();
    choose some s : Statement(x) / x == c;
    choose some r : ResultSet(y) / y == s;
}
"#;

/// The *incremental* JDBC strategy of paper §3: first verify each ResultSet
/// in isolation, then with its Statement, then with the full context.
pub const JDBC_INCREMENTAL: &str = r#"
strategy JdbcIncremental {
    choose some r : ResultSet(y);
}
on failure {
    choose some s : Statement(x);
    choose some failing r : ResultSet(y) / y == s;
}
on failure {
    choose some c : Connection();
    choose some failing s : Statement(x) / x == c;
    choose some failing r : ResultSet(y) / y == s;
}
"#;

/// Per-stream separation for the IO-streams property.
pub const IOSTREAM_SINGLE: &str = r#"
strategy StreamSingle {
    choose some f : InputStream();
}
"#;

/// Per-file separation for the Fig. 3 example.
pub const FILE_SINGLE: &str = r#"
strategy FileSingle {
    choose some f : File();
}
"#;

/// Per-iterator separation for the concurrent-modification property,
/// tracking the iterator's collection.
pub const CMP_SINGLE: &str = r#"
strategy CmpSingle {
    choose some c : Collection();
    choose all i : Iterator(x) / x == c;
}
"#;

/// Finer CMP separation: one subproblem per (collection, iterator) pair.
pub const CMP_MULTI: &str = r#"
strategy CmpMulti {
    choose some c : Collection();
    choose some i : Iterator(x) / x == c;
}
"#;

/// Incremental CMP strategy: iterators alone, then with their collection.
pub const CMP_INCREMENTAL: &str = r#"
strategy CmpIncremental {
    choose some i : Iterator(x);
}
on failure {
    choose some c : Collection();
    choose some failing i : Iterator(x) / x == c;
}
"#;

/// Parses one of the built-in strategy sources.
///
/// # Panics
///
/// Never panics for the shipped sources (covered by tests).
pub fn parse_builtin(src: &str) -> Strategy {
    parse_strategy(src).expect("builtin strategy parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::{covered_classes, incremental_covers};

    #[test]
    fn all_builtins_parse() {
        for src in [
            JDBC_SINGLE,
            JDBC_MULTI,
            JDBC_INCREMENTAL,
            IOSTREAM_SINGLE,
            FILE_SINGLE,
            CMP_SINGLE,
            CMP_MULTI,
            CMP_INCREMENTAL,
        ] {
            let s = parse_builtin(src);
            assert!(!s.stages.is_empty());
        }
    }

    #[test]
    fn builtin_strategies_cover_their_checked_types() {
        let single = parse_builtin(JDBC_SINGLE);
        assert!(covered_classes(&single.stages[0]).contains("ResultSet"));
        let multi = parse_builtin(JDBC_MULTI);
        assert!(covered_classes(&multi.stages[0]).contains("ResultSet"));
        let inc = parse_builtin(JDBC_INCREMENTAL);
        assert!(incremental_covers(&inc.stages, "ResultSet"));
        let cmp = parse_builtin(CMP_SINGLE);
        assert!(covered_classes(&cmp.stages[0]).contains("Iterator"));
    }
}
