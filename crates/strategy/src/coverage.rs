//! Coverage checking (paper Theorem 1).
//!
//! A strategy is free to specify *partial* verification (checking only some
//! objects), but for a strategy to preserve the meaning of full verification
//! it must **completely cover** every type being verified: for every concrete
//! object of the type there must be some instrumented execution in which that
//! object is chosen.
//!
//! Theorem 1 gives a syntactic sufficient condition: a strategy consisting
//! only of (a) choice operations with no condition and (b) operations of the
//! form `choose all x : T(w…) / wi == zj ∧ …` (with every `zj` bound earlier)
//! completely covers every type it chooses.
//!
//! [`covered_classes`] additionally recognizes `choose some` operations whose
//! equations chain back to covered variables — sound because the
//! non-deterministic selection can always pick the object in question once
//! its ancestors are chosen.

use std::collections::HashSet;

use crate::ast::{AtomicStrategy, ChoiceMode};

/// Whether the atomic strategy syntactically satisfies Theorem 1, in which
/// case every class it chooses is completely covered.
pub fn theorem1_applies(stage: &AtomicStrategy) -> bool {
    stage.choices.iter().all(|op| {
        op.equations.is_empty() || op.mode == ChoiceMode::All
        // equations' right-hand sides are validated at parse time to be
        // earlier-bound variables, which is the remaining Theorem 1 side
        // condition.
    })
}

/// Classes of the stage that are *provably completely covered*.
///
/// A choice covers its class when it is unconditioned, or when every equation
/// refers to an earlier choice that itself covers its class (for `all` this
/// is Theorem 1; for `some` it follows from non-determinism: any concrete
/// object's ancestors can be the ones chosen).
///
/// `failing`-restricted choices never cover their class in isolation — they
/// deliberately restrict attention — but an incremental strategy as a whole
/// still covers a class if, taken together with the preceding stages, every
/// object is examined; see [`incremental_covers`].
pub fn covered_classes(stage: &AtomicStrategy) -> HashSet<String> {
    let mut covered_vars: HashSet<&str> = HashSet::new();
    let mut covered: HashSet<String> = HashSet::new();
    for op in &stage.choices {
        if op.failing {
            continue;
        }
        let deps_covered = op
            .equations
            .iter()
            .all(|(_, z)| covered_vars.contains(z.as_str()));
        if deps_covered {
            covered_vars.insert(&op.var);
            covered.insert(op.class.clone());
        }
    }
    covered
}

/// Whether an incremental strategy completely covers `class`: the *first*
/// stage must cover it (later stages only re-examine failures, so coverage
/// must be established up front), or some later stage must cover it without
/// any `failing` restriction on the path to it.
pub fn incremental_covers(stages: &[AtomicStrategy], class: &str) -> bool {
    stages
        .iter()
        .any(|stage| covered_classes(stage).contains(class))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_strategy;

    #[test]
    fn single_choice_strategy_covers_all_types() {
        let s = parse_strategy(
            r#"
strategy Single {
    choose some c : Connection();
    choose all s : Statement(x) / x == c;
    choose all r : ResultSet(y) / y == s;
}
"#,
        )
        .unwrap();
        let stage = &s.stages[0];
        assert!(theorem1_applies(stage));
        let covered = covered_classes(stage);
        assert!(covered.contains("Connection"));
        assert!(covered.contains("Statement"));
        assert!(covered.contains("ResultSet"));
    }

    #[test]
    fn multi_choice_strategy_still_covers() {
        let s = parse_strategy(
            r#"
strategy Multi {
    choose some c : Connection();
    choose some s : Statement(x) / x == c;
    choose some r : ResultSet(y) / y == s;
}
"#,
        )
        .unwrap();
        let stage = &s.stages[0];
        // Theorem 1's syntactic form does not apply (some + condition)…
        assert!(!theorem1_applies(stage));
        // …but the extended reasoning still certifies coverage.
        let covered = covered_classes(stage);
        assert!(covered.contains("ResultSet"));
    }

    #[test]
    fn failing_choices_do_not_cover() {
        let s = parse_strategy(
            r#"
strategy Inc {
    choose some r : ResultSet(y);
}
on failure {
    choose some s : Statement(x);
    choose some failing r : ResultSet(y) / y == s;
}
"#,
        )
        .unwrap();
        let covered0 = covered_classes(&s.stages[0]);
        assert!(covered0.contains("ResultSet"));
        let covered1 = covered_classes(&s.stages[1]);
        assert!(covered1.contains("Statement"));
        assert!(!covered1.contains("ResultSet"), "failing restriction");
        // The incremental strategy as a whole covers ResultSet via stage 0.
        assert!(incremental_covers(&s.stages, "ResultSet"));
        assert!(incremental_covers(&s.stages, "Statement"));
        assert!(!incremental_covers(&s.stages, "Connection"));
    }

    #[test]
    fn dangling_dependency_breaks_coverage() {
        // `s` depends on `c`, but `c` is failing-restricted → not covered.
        let s = parse_strategy(
            r#"
strategy S {
    choose some x : A();
}
on failure {
    choose some failing c : Connection();
    choose all s : Statement(w) / w == c;
}
"#,
        )
        .unwrap();
        let covered = covered_classes(&s.stages[1]);
        assert!(!covered.contains("Connection"));
        assert!(!covered.contains("Statement"));
    }
}
