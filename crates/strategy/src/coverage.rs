//! Coverage checking (paper Theorem 1).
//!
//! A strategy is free to specify *partial* verification (checking only some
//! objects), but for a strategy to preserve the meaning of full verification
//! it must **completely cover** every type being verified: for every concrete
//! object of the type there must be some instrumented execution in which that
//! object is chosen.
//!
//! Theorem 1 gives a syntactic sufficient condition: a strategy consisting
//! only of (a) choice operations with no condition and (b) operations of the
//! form `choose all x : T(w…) / wi == zj ∧ …` (with every `zj` bound earlier)
//! completely covers every type it chooses.
//!
//! [`covered_classes`] additionally recognizes `choose some` operations whose
//! equations chain back to covered variables — sound because the
//! non-deterministic selection can always pick the object in question once
//! its ancestors are chosen.

use std::collections::HashSet;

use crate::ast::{AtomicStrategy, ChoiceMode};

/// Whether the atomic strategy syntactically satisfies Theorem 1, in which
/// case every class it chooses is completely covered.
pub fn theorem1_applies(stage: &AtomicStrategy) -> bool {
    stage.choices.iter().all(|op| {
        op.equations.is_empty() || op.mode == ChoiceMode::All
        // equations' right-hand sides are validated at parse time to be
        // earlier-bound variables, which is the remaining Theorem 1 side
        // condition.
    })
}

/// Classes of the stage that are *provably completely covered*.
///
/// A choice covers its class when it is unconditioned, or when every equation
/// refers to an earlier choice that itself covers its class (for `all` this
/// is Theorem 1; for `some` it follows from non-determinism: any concrete
/// object's ancestors can be the ones chosen).
///
/// `failing`-restricted choices never cover their class in isolation — they
/// deliberately restrict attention — but an incremental strategy as a whole
/// still covers a class if, taken together with the preceding stages, every
/// object is examined; see [`incremental_covers`].
pub fn covered_classes(stage: &AtomicStrategy) -> HashSet<String> {
    let mut covered_vars: HashSet<&str> = HashSet::new();
    let mut covered: HashSet<String> = HashSet::new();
    for op in &stage.choices {
        if op.failing {
            continue;
        }
        let deps_covered = op
            .equations
            .iter()
            .all(|(_, z)| covered_vars.contains(z.as_str()));
        if deps_covered {
            covered_vars.insert(&op.var);
            covered.insert(op.class.clone());
        }
    }
    covered
}

/// Whether a stage *re-examines* every previously-failing object of `class`.
///
/// Within a violating state the engine records the allocation sites of **all**
/// chosen objects as failing — a failing object's chosen ancestors are failing
/// too. A stage therefore re-examines every failing object of `class` when it
/// has a choice on `class` whose equations chain only through *complete*
/// variables: a variable is complete when its own equations do (`failing`
/// choices included — the restriction matches exactly the failing set we need
/// to re-examine, and failing ancestors are selectable by the argument above).
pub fn stage_reexamines(stage: &AtomicStrategy, class: &str) -> bool {
    let mut complete: HashSet<&str> = HashSet::new();
    let mut found = false;
    for op in &stage.choices {
        let deps_complete = op
            .equations
            .iter()
            .all(|(_, z)| complete.contains(z.as_str()));
        if deps_complete {
            complete.insert(&op.var);
            found |= op.class == class;
        }
    }
    found
}

/// Whether an incremental strategy completely covers `class` **under the
/// driver's early-stop semantics**: the driver stops after the first stage
/// that fully verifies, and the final verdict is the *last* stage run.
///
/// Two conditions are therefore required:
///
/// 1. the *first* stage covers `class` — a class first covered by a later
///    stage is never examined when stage 0 verifies, and
/// 2. every later stage [re-examines](stage_reexamines) failing objects of
///    `class` — otherwise an error found in an earlier stage is dropped from
///    the final verdict.
///
/// (A previous revision accepted any stage covering the class, which is
/// unsound on both counts.)
pub fn incremental_covers(stages: &[AtomicStrategy], class: &str) -> bool {
    let Some((first, rest)) = stages.split_first() else {
        return false;
    };
    covered_classes(first).contains(class)
        && rest.iter().all(|stage| stage_reexamines(stage, class))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_strategy;

    #[test]
    fn single_choice_strategy_covers_all_types() {
        let s = parse_strategy(
            r#"
strategy Single {
    choose some c : Connection();
    choose all s : Statement(x) / x == c;
    choose all r : ResultSet(y) / y == s;
}
"#,
        )
        .unwrap();
        let stage = &s.stages[0];
        assert!(theorem1_applies(stage));
        let covered = covered_classes(stage);
        assert!(covered.contains("Connection"));
        assert!(covered.contains("Statement"));
        assert!(covered.contains("ResultSet"));
    }

    #[test]
    fn multi_choice_strategy_still_covers() {
        let s = parse_strategy(
            r#"
strategy Multi {
    choose some c : Connection();
    choose some s : Statement(x) / x == c;
    choose some r : ResultSet(y) / y == s;
}
"#,
        )
        .unwrap();
        let stage = &s.stages[0];
        // Theorem 1's syntactic form does not apply (some + condition)…
        assert!(!theorem1_applies(stage));
        // …but the extended reasoning still certifies coverage.
        let covered = covered_classes(stage);
        assert!(covered.contains("ResultSet"));
    }

    #[test]
    fn failing_choices_do_not_cover() {
        let s = parse_strategy(
            r#"
strategy Inc {
    choose some r : ResultSet(y);
}
on failure {
    choose some s : Statement(x);
    choose some failing r : ResultSet(y) / y == s;
}
"#,
        )
        .unwrap();
        let covered0 = covered_classes(&s.stages[0]);
        assert!(covered0.contains("ResultSet"));
        let covered1 = covered_classes(&s.stages[1]);
        assert!(covered1.contains("Statement"));
        assert!(!covered1.contains("ResultSet"), "failing restriction");
        // The incremental strategy as a whole covers ResultSet: stage 0
        // covers it and stage 1 re-examines its failing objects.
        assert!(incremental_covers(&s.stages, "ResultSet"));
        // Statement is only covered by stage 1, which never runs when
        // stage 0 verifies — NOT covered under early-stop semantics.
        assert!(!incremental_covers(&s.stages, "Statement"));
        assert!(!incremental_covers(&s.stages, "Connection"));
    }

    #[test]
    fn theorem1_rejects_conditioned_some_and_accepts_all() {
        let s = parse_strategy(
            r#"
strategy T {
    choose some c : Connection();
    choose all s : Statement(x) / x == c;
}
"#,
        )
        .unwrap();
        assert!(theorem1_applies(&s.stages[0]));
        let s2 = parse_strategy(
            r#"
strategy T2 {
    choose some c : Connection();
    choose some s : Statement(x) / x == c;
}
"#,
        )
        .unwrap();
        assert!(!theorem1_applies(&s2.stages[0]));
    }

    #[test]
    fn covered_classes_requires_equation_chain_to_covered_vars() {
        // `r` chains to `s` which chains to `c`: all covered. A second
        // choice whose equation names a failing var is not covered.
        let s = parse_strategy(
            r#"
strategy C {
    choose some a : A();
}
on failure {
    choose some c : Connection();
    choose some failing s : Statement(x) / x == c;
    choose all r : ResultSet(y) / y == s;
}
"#,
        )
        .unwrap();
        let covered = covered_classes(&s.stages[1]);
        assert!(covered.contains("Connection"));
        assert!(!covered.contains("Statement"), "failing choice");
        assert!(
            !covered.contains("ResultSet"),
            "chained through a failing var"
        );
    }

    #[test]
    fn stage_reexamines_chains_through_failing_choices() {
        let s = parse_strategy(
            r#"
strategy R {
    choose some r : ResultSet(y);
}
on failure {
    choose some c : Connection();
    choose some failing s : Statement(x) / x == c;
    choose some failing r : ResultSet(y) / y == s;
}
"#,
        )
        .unwrap();
        // failing s is complete (chains to c), so failing r is complete too.
        assert!(stage_reexamines(&s.stages[1], "ResultSet"));
        assert!(stage_reexamines(&s.stages[1], "Statement"));
        assert!(!stage_reexamines(&s.stages[1], "Element"));
    }

    #[test]
    fn incremental_covers_requires_every_later_stage_to_reexamine() {
        // Stage 1 drops the ResultSet choice entirely: a stage-0 ResultSet
        // error would vanish from the final verdict, so not covered.
        let s = parse_strategy(
            r#"
strategy Drop {
    choose some r : ResultSet(y);
}
on failure {
    choose some s : Statement(x);
}
"#,
        )
        .unwrap();
        assert!(!incremental_covers(&s.stages, "ResultSet"));
    }

    #[test]
    fn incremental_covers_accepts_empty_and_single_stage() {
        assert!(!incremental_covers(&[], "Connection"));
        let s = parse_strategy(
            r#"
strategy One {
    choose some c : Connection();
}
"#,
        )
        .unwrap();
        assert!(incremental_covers(&s.stages, "Connection"));
        assert!(!incremental_covers(&s.stages, "Statement"));
    }

    #[test]
    fn dangling_dependency_breaks_coverage() {
        // `s` depends on `c`, but `c` is failing-restricted → not covered.
        let s = parse_strategy(
            r#"
strategy S {
    choose some x : A();
}
on failure {
    choose some failing c : Connection();
    choose all s : Statement(w) / w == c;
}
"#,
        )
        .unwrap();
        let covered = covered_classes(&s.stages[1]);
        assert!(!covered.contains("Connection"));
        assert!(!covered.contains("Statement"));
    }
}
