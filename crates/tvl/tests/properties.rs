//! Property-based tests of the three-valued-logic engine's soundness
//! obligations (the embedding theorem instances the analysis relies on):
//!
//! * canonical abstraction embeds the original structure;
//! * the canonical key is invariant under node permutation;
//! * focus outputs cover the input (some output embeds each represented
//!   concrete state);
//! * coerce never discards a consistent concrete structure and never
//!   changes one;
//! * formula evaluation is monotone along blurring: the value on the
//!   blurred structure conservatively approximates the concrete value.

use proptest::prelude::*;

use hetsep_tvl::canon::{blur, canonical_key};
use hetsep_tvl::coerce::{coerce, CoerceOutcome};
use hetsep_tvl::embed::embeds;
use hetsep_tvl::eval::eval_closed;
use hetsep_tvl::focus::{focus, FocusSpec, DEFAULT_FOCUS_LIMIT};
use hetsep_tvl::formula::{Formula, Var};
use hetsep_tvl::pred::{PredFlags, PredId, PredTable};
use hetsep_tvl::structure::{NodeId, Structure};
use hetsep_tvl::Kleene;

const N_VARS: usize = 2;
const N_BOOLS: usize = 2;
const N_FIELDS: usize = 2;

struct Vocab {
    table: PredTable,
    vars: Vec<PredId>,
    bools: Vec<PredId>,
    fields: Vec<PredId>,
}

fn vocab() -> Vocab {
    let mut table = PredTable::new();
    let vars = (0..N_VARS)
        .map(|i| table.add_unary(&format!("x{i}"), PredFlags::reference_variable()))
        .collect();
    let bools = (0..N_BOOLS)
        .map(|i| table.add_unary(&format!("b{i}"), PredFlags::boolean_field()))
        .collect();
    let fields = (0..N_FIELDS)
        .map(|i| table.add_binary(&format!("f{i}"), PredFlags::reference_field()))
        .collect();
    Vocab {
        table,
        vars,
        bools,
        fields,
    }
}

/// A concrete heap description: per variable an optional target, per node a
/// bool-field bitmap, per (field, node) an optional target.
#[derive(Debug, Clone)]
struct ConcreteHeap {
    nodes: usize,
    var_targets: Vec<Option<usize>>,
    bools: Vec<Vec<bool>>,
    field_targets: Vec<Vec<Option<usize>>>,
}

fn heap_strategy() -> impl Strategy<Value = ConcreteHeap> {
    (1usize..5)
        .prop_flat_map(|nodes| {
            (
                Just(nodes),
                prop::collection::vec(prop::option::of(0..nodes), N_VARS),
                prop::collection::vec(prop::collection::vec(any::<bool>(), nodes), N_BOOLS),
                prop::collection::vec(
                    prop::collection::vec(prop::option::of(0..nodes), nodes),
                    N_FIELDS,
                ),
            )
        })
        .prop_map(|(nodes, var_targets, bools, field_targets)| ConcreteHeap {
            nodes,
            var_targets,
            bools,
            field_targets,
        })
}

fn build(v: &Vocab, h: &ConcreteHeap) -> Structure {
    let mut s = Structure::new(&v.table);
    let ids: Vec<NodeId> = (0..h.nodes).map(|_| s.add_node(&v.table)).collect();
    for (p, t) in v.vars.iter().zip(&h.var_targets) {
        if let Some(t) = t {
            s.set_unary(&v.table, *p, ids[*t], Kleene::True);
        }
    }
    for (p, col) in v.bools.iter().zip(&h.bools) {
        for (n, &b) in col.iter().enumerate() {
            s.set_unary(&v.table, *p, ids[n], Kleene::from_bool(b));
        }
    }
    for (p, col) in v.fields.iter().zip(&h.field_targets) {
        for (src, t) in col.iter().enumerate() {
            if let Some(t) = t {
                s.set_binary(&v.table, *p, ids[src], ids[*t], Kleene::True);
            }
        }
    }
    s
}

/// Random closed formulas over the vocabulary.
fn formula_strategy(v: &Vocab) -> impl Strategy<Value = Formula> {
    let vars = v.vars.clone();
    let bools = v.bools.clone();
    let fields = v.fields.clone();
    let atom = {
        let vars = vars.clone();
        let bools = bools.clone();
        let fields = fields.clone();
        prop_oneof![
            (0..vars.len()).prop_map(move |i| Formula::unary(vars[i], Var(0))),
            (0..bools.len()).prop_map(move |i| Formula::unary(bools[i], Var(0))),
            (0..fields.len()).prop_map(move |i| Formula::binary(fields[i], Var(0), Var(1))),
            Just(Formula::eq(Var(0), Var(1))),
        ]
    };
    atom.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.or(b)),
        ]
    })
    .prop_map(|body| {
        // Close over both variables.
        Formula::exists(Var(0), Formula::exists(Var(1), body))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// blur(s) embeds s for every concrete structure.
    #[test]
    fn blur_embeds_concrete(h in heap_strategy()) {
        let v = vocab();
        let s = build(&v, &h);
        let b = blur(&s, &v.table);
        prop_assert!(embeds(&s, &b, &v.table));
    }

    /// Blur is idempotent up to canonical ordering.
    #[test]
    fn blur_idempotent(h in heap_strategy()) {
        let v = vocab();
        let s = build(&v, &h);
        let once = blur(&s, &v.table);
        let twice = blur(&once, &v.table);
        prop_assert_eq!(
            canonical_key(&once, &v.table),
            canonical_key(&twice, &v.table)
        );
    }

    /// The canonical key is invariant under permutations of the universe.
    #[test]
    fn canonical_key_permutation_invariant(h in heap_strategy(), seed in any::<u64>()) {
        let v = vocab();
        let s = blur(&build(&v, &h), &v.table);
        // Deterministic pseudo-permutation from the seed.
        let n = s.node_count();
        let mut perm: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
        let mut state = seed;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let p = s.permute(&perm);
        prop_assert_eq!(canonical_key(&s, &v.table), canonical_key(&p, &v.table));
    }

    /// Focus on a variable covers the blurred structure: for the concrete
    /// state, some focused output still embeds it.
    #[test]
    fn focus_covers(h in heap_strategy(), var_ix in 0..N_VARS) {
        let v = vocab();
        let s = build(&v, &h);
        let b = blur(&s, &v.table);
        let out = focus(&b, &v.table, &FocusSpec::Unary(v.vars[var_ix]), DEFAULT_FOCUS_LIMIT);
        prop_assert!(
            out.iter().any(|o| embeds(&s, o, &v.table)),
            "no focused output embeds the concrete state"
        );
    }

    /// Focus + coerce still covers: coercion may sharpen or discard focused
    /// variants, but some surviving variant embeds the concrete state.
    #[test]
    fn focus_then_coerce_covers(h in heap_strategy(), var_ix in 0..N_VARS) {
        let v = vocab();
        let s = build(&v, &h);
        let b = blur(&s, &v.table);
        let out = focus(&b, &v.table, &FocusSpec::Unary(v.vars[var_ix]), DEFAULT_FOCUS_LIMIT);
        let survivors: Vec<_> = out
            .iter()
            .filter_map(|o| coerce(o, &v.table).feasible())
            .collect();
        prop_assert!(
            survivors.iter().any(|o| embeds(&s, o, &v.table)),
            "no coerced output embeds the concrete state"
        );
    }

    /// Coerce is the identity on consistent concrete structures.
    #[test]
    fn coerce_fixes_concrete(h in heap_strategy()) {
        let v = vocab();
        let s = build(&v, &h);
        match coerce(&s, &v.table) {
            CoerceOutcome::Feasible(out) => prop_assert_eq!(out, s),
            CoerceOutcome::Infeasible => prop_assert!(false, "concrete structure discarded"),
        }
    }

    /// Evaluation is conservative along blurring: the blurred value
    /// information-approximates the concrete value.
    #[test]
    fn eval_monotone_under_blur(h in heap_strategy(), f in formula_strategy(&vocab())) {
        let v = vocab();
        let s = build(&v, &h);
        let b = blur(&s, &v.table);
        let cv = eval_closed(&s, &v.table, &f);
        let av = eval_closed(&b, &v.table, &f);
        prop_assert!(
            cv.le_info(av),
            "concrete {cv} not approximated by abstract {av} for {f}"
        );
    }

    /// Structure equality after canonicalization coincides with isomorphism
    /// on blurred structures.
    #[test]
    fn canonical_equality_is_isomorphism(h in heap_strategy()) {
        let v = vocab();
        let s = blur(&build(&v, &h), &v.table);
        let reversed: Vec<NodeId> = (0..s.node_count()).rev().map(NodeId::from_index).collect();
        let p = s.permute(&reversed);
        prop_assert!(hetsep_tvl::embed::is_isomorphic(&s, &p, &v.table));
        prop_assert_eq!(canonical_key(&s, &v.table), canonical_key(&p, &v.table));
    }
}
