//! Allocation regression tests for bulk node materialization.
//!
//! `Structure::add_nodes(table, k)` must re-grid each of the four plane
//! vectors in place — one `resize` (at most one allocation or reallocation)
//! per plane, independent of `k` — and `reserve_nodes` must move even that
//! cost up front, making the subsequent grow allocation-free. A counting
//! global allocator pins both bounds so a regression to per-node growth
//! (k allocations) or per-row copying through temporaries fails loudly.
//!
//! Everything runs inside a single `#[test]` so no sibling test's
//! allocations race the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hetsep_tvl::kleene::Kleene;
use hetsep_tvl::pred::{PredFlags, PredTable};
use hetsep_tvl::structure::Structure;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn bulk_grow_allocation_bounds() {
    let mut table = PredTable::new();
    let x = table.add_unary("x", PredFlags::reference_variable());
    let f = table.add_binary("f", PredFlags::reference_field());

    // One bulk grow 0 → 256 nodes: at most one allocation per plane vector
    // (two unary planes, two binary planes), never one per node or per row.
    let mut s = Structure::new(&table);
    let grow = allocs_during(|| {
        s.add_nodes(&table, 256);
    });
    assert!(
        grow <= 4,
        "add_nodes(256) must allocate at most once per plane, got {grow}"
    );
    assert_eq!(s.node_count(), 256);

    // After an explicit reserve, the grow itself is allocation-free.
    let mut s = Structure::new(&table);
    s.reserve_nodes(&table, 300);
    let grow = allocs_during(|| {
        s.add_nodes(&table, 300);
    });
    assert_eq!(
        grow, 0,
        "add_nodes after reserve_nodes must not touch the allocator"
    );
    assert_eq!(s.node_count(), 300);

    // The grown structure is fully usable: values land where they should.
    let first = s.nodes().next().unwrap();
    let last = s.nodes().last().unwrap();
    s.set_unary(&table, x, last, Kleene::True);
    s.set_binary(&table, f, first, last, Kleene::Unknown);
    assert_eq!(s.unary(&table, x, last), Kleene::True);
    assert_eq!(s.binary(&table, f, first, last), Kleene::Unknown);
    assert_eq!(s.definite_node(&table, x), Some(last));
}
