//! Golden-file test for the NDJSON trace schema.
//!
//! The event stream is a *format contract* consumed by external tooling
//! (`--trace` output), so its serialization is pinned against a committed
//! golden file. The events here are hand-constructed — never produced by a
//! live run — so wall-clock jitter cannot touch the golden bytes. If this
//! test fails because the schema deliberately changed, regenerate
//! `golden_trace.ndjson` and call the change out in the PR.

use hetsep_tvl::telemetry::{event_to_json, Counter, Event, Phase, TraceWriter};

const GOLDEN: &str = include_str!("golden_trace.ndjson");

fn fixed_events() -> Vec<Event> {
    vec![
        Event::SubproblemStart {
            index: 0,
            site: Some(3),
        },
        Event::PhaseSample {
            index: 0,
            phase: Phase::Focus,
            count: 12,
            nanos: 3400,
        },
        Event::CounterSample {
            index: 0,
            counter: Counter::InternHits,
            value: 7,
        },
        Event::CounterSample {
            index: 0,
            counter: Counter::TransferCacheHits,
            value: 42,
        },
        Event::CounterSample {
            index: 0,
            counter: Counter::TransferCacheMisses,
            value: 11,
        },
        Event::CounterSample {
            index: 0,
            counter: Counter::TransferCacheEvictions,
            value: 0,
        },
        Event::CounterSample {
            index: 0,
            counter: Counter::PreanalysisComponents,
            value: 2,
        },
        Event::CounterSample {
            index: 0,
            counter: Counter::PreanalysisPrunedBaseline,
            value: 1,
        },
        Event::CounterSample {
            index: 0,
            counter: Counter::PreanalysisPrunedFlow,
            value: 3,
        },
        Event::CounterSample {
            index: 0,
            counter: Counter::PreanalysisEstimatedStructures,
            value: 96,
        },
        Event::CounterSample {
            index: 0,
            counter: Counter::IntraBatches,
            value: 5,
        },
        Event::CounterSample {
            index: 0,
            counter: Counter::IntraBatchItems,
            value: 17,
        },
        Event::CounterSample {
            index: 0,
            counter: Counter::CallEvaluations,
            value: 9,
        },
        Event::CounterSample {
            index: 0,
            counter: Counter::SummaryHits,
            value: 6,
        },
        Event::CounterSample {
            index: 0,
            counter: Counter::SummaryMisses,
            value: 3,
        },
        Event::CounterSample {
            index: 0,
            counter: Counter::SharedSummaryHits,
            value: 2,
        },
        Event::LocationStructures {
            index: 0,
            location: 5,
            structures: 9,
        },
        Event::BudgetExhausted {
            index: 0,
            visits: 400_000,
        },
        Event::Cancelled {
            index: 0,
            visits: 123,
        },
        Event::SubproblemFinish {
            index: 0,
            site: Some(3),
            visits: 250,
            structures: 40,
            errors: 1,
            complete: true,
        },
        Event::SubproblemStart {
            index: 1,
            site: None,
        },
        Event::SubproblemFinish {
            index: 1,
            site: None,
            visits: 10,
            structures: 4,
            errors: 0,
            complete: false,
        },
    ]
}

#[test]
fn trace_writer_matches_golden_file() {
    let mut writer = TraceWriter::new(Vec::new());
    for event in fixed_events() {
        use hetsep_tvl::telemetry::EventSink as _;
        writer.record(&event);
    }
    let bytes = writer.finish().expect("in-memory writes cannot fail");
    let got = String::from_utf8(bytes).expect("NDJSON is UTF-8");
    assert_eq!(
        got, GOLDEN,
        "NDJSON trace schema drifted from tests/golden_trace.ndjson"
    );
}

#[test]
fn every_line_is_a_flat_json_object() {
    // No serde in the workspace, so hold the line with structural checks:
    // one object per line, no nesting, keys and string values are bare
    // identifiers (nothing ever needs escaping).
    for event in fixed_events() {
        let line = event_to_json(&event);
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(!line.contains('\n'), "one event per line: {line}");
        assert!(!line.contains('\\'), "no escapes needed: {line}");
        let inner = &line[1..line.len() - 1];
        assert!(
            !inner.contains('{') && !inner.contains('}'),
            "flat object: {line}"
        );
        assert!(
            line.contains("\"event\":\""),
            "every event is self-describing: {line}"
        );
    }
}
