//! Structure-merging policies.
//!
//! After individual merging (blur), an analysis may additionally merge whole
//! *structures* that arrive at the same program location (paper §5,
//! "Structure Merging"). The paper lists three equivalence relations `≈`
//! used by TVLA, and contributes a *heterogeneous* relation `≈_c`: merge two
//! structures iff their substructures of `c`-individuals (the relevant parts)
//! are isomorphic — allowing the irrelevant parts of different states to be
//! collapsed together while the relevant parts stay separate.

use std::collections::HashMap;

use crate::canon::{blur, canonical_key, CanonicalKey};
use crate::kleene::Kleene;
use crate::pred::{Arity, PredId, PredTable};
use crate::structure::Structure;

/// Policy deciding which structures at a program location are merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergePolicy {
    /// Keep every isomorphism class separate (TVLA's default powerset
    /// representation; relation (a) in the paper).
    Powerset,
    /// Merge structures that agree on all nullary predicate values
    /// (relation (b) in the paper).
    NullaryJoin,
    /// Merge all structures at the location into a single structure
    /// (the coarsest instance, relation (c) with a trivial universe match).
    SingleStructure,
    /// Heterogeneous merging `≈_c`: merge structures whose substructures of
    /// individuals with `c = 1` are isomorphic (paper §5). `c` is typically
    /// the `relevant` predicate.
    RelevantIso(PredId),
}

/// Merges a batch of structures under `policy`. Every output structure is
/// blurred and canonically ordered; outputs are pairwise non-equal.
pub fn merge_all(structures: &[Structure], table: &PredTable, policy: &MergePolicy) -> Vec<Structure> {
    // `blur` output is already canonically ordered (ascending unique
    // canonical names), so no separate re-keying pass is needed.
    let blurred: Vec<Structure> = structures.iter().map(|s| blur(s, table)).collect();
    match policy {
        MergePolicy::Powerset => dedup(blurred),
        MergePolicy::NullaryJoin => merge_classes(blurred, table, |s| nullary_vector(s, table)),
        MergePolicy::SingleStructure => merge_classes(blurred, table, |_| 0u8),
        MergePolicy::RelevantIso(c) => {
            let c = *c;
            merge_classes(blurred, table, |s| relevant_key(s, table, c))
        }
    }
}

fn dedup(structures: Vec<Structure>) -> Vec<Structure> {
    let mut seen: HashMap<Structure, ()> = HashMap::new();
    let mut out = Vec::new();
    for s in structures {
        if seen.insert(s.clone(), ()).is_none() {
            out.push(s);
        }
    }
    out
}

fn merge_classes<K: std::hash::Hash + Eq>(
    structures: Vec<Structure>,
    table: &PredTable,
    mut key: impl FnMut(&Structure) -> K,
) -> Vec<Structure> {
    let mut classes: Vec<(K, Structure)> = Vec::new();
    let mut index: HashMap<K, usize> = HashMap::new();
    for s in structures {
        let k = key(&s);
        match index.get(&k) {
            Some(&ix) => {
                let merged = weaken_union_conflicts(&classes[ix].1.union(&s), table);
                classes[ix].1 = blur(&merged, table);
            }
            None => {
                index.insert(k, classes.len());
                let k2 = key(&s);
                classes.push((k2, s));
            }
        }
    }
    dedup(classes.into_iter().map(|(_, s)| s).collect())
}

/// Repairs a unioned structure so it soundly represents the *union* of the
/// merged states: a `unique` predicate definitely held by two distinct
/// individuals (one per merged state) is weakened to `1/2` on each, and a
/// functional field leaving one non-summary individual toward two definite
/// targets is likewise weakened. Without this, coerce would (correctly)
/// judge the union structure infeasible and silently drop the represented
/// states.
///
/// Word-parallel: "two definite holders" is `count_set` over the `true`-plane,
/// and the weakening True → 1/2 is `h |= t; t = 0` block-wide
/// ([`crate::bits::weaken_rows`]; the two planes are disjoint, so OR-ing the
/// old `t` bits into `h` encodes exactly Unknown on the former holders and
/// leaves every other value untouched).
pub fn weaken_union_conflicts(s: &Structure, table: &PredTable) -> Structure {
    let mut out = s.clone();
    for p in table.unique_preds() {
        let slot = table.slot(p);
        if crate::bits::count_set(out.unary_planes(slot).0) >= 2 {
            let (t, h) = out.unary_planes_mut(slot);
            crate::bits::weaken_rows(t, h);
        }
    }
    for f in table.function_preds() {
        let slot = table.slot(f);
        for src in out.nodes() {
            if out.is_summary(table, src) {
                continue;
            }
            if crate::bits::count_set(out.binary_row(slot, src.index()).0) >= 2 {
                let (t, h) = out.binary_row_mut(slot, src.index());
                crate::bits::weaken_rows(t, h);
            }
        }
    }
    out
}

fn nullary_vector(s: &Structure, table: &PredTable) -> Vec<Kleene> {
    table
        .iter_arity(Arity::Nullary)
        .map(|p| s.nullary(table, p))
        .collect()
}

/// Canonical key of the substructure induced by individuals on which `c`
/// definitely holds.
fn relevant_key(s: &Structure, table: &PredTable, c: PredId) -> CanonicalKey {
    let (sub, _) = s.retain_nodes(table, |u| s.unary(table, c, u) == Kleene::True);
    canonical_key(&sub, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::PredFlags;

    fn table() -> (PredTable, PredId, PredId, PredId) {
        let mut t = PredTable::new();
        let x = t.add_unary("x", PredFlags::reference_variable());
        let rel = t.add_unary("relevant", PredFlags::default());
        let g = t.add_nullary("g", PredFlags::default());
        (t, x, rel, g)
    }

    fn one_node(t: &PredTable, x: PredId, xval: Kleene, g: PredId, gval: Kleene) -> Structure {
        let mut s = Structure::new(t);
        let u = s.add_node(t);
        s.set_unary(t, x, u, xval);
        s.set_nullary(t, g, gval);
        s
    }

    #[test]
    fn powerset_dedups_isomorphic() {
        let (t, x, _rel, g) = table();
        let s1 = one_node(&t, x, Kleene::True, g, Kleene::False);
        let s2 = one_node(&t, x, Kleene::True, g, Kleene::False);
        let s3 = one_node(&t, x, Kleene::False, g, Kleene::False);
        let out = merge_all(&[s1, s2, s3], &t, &MergePolicy::Powerset);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn nullary_join_groups_by_nullary() {
        let (t, x, _rel, g) = table();
        // Same nullary value, different unary: merged into one structure.
        let s1 = one_node(&t, x, Kleene::True, g, Kleene::True);
        let s2 = one_node(&t, x, Kleene::False, g, Kleene::True);
        // Different nullary value: kept separate.
        let s3 = one_node(&t, x, Kleene::True, g, Kleene::False);
        let out = merge_all(&[s1, s2, s3], &t, &MergePolicy::NullaryJoin);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn single_structure_merges_everything() {
        let (t, x, _rel, g) = table();
        let s1 = one_node(&t, x, Kleene::True, g, Kleene::True);
        let s2 = one_node(&t, x, Kleene::False, g, Kleene::False);
        let out = merge_all(&[s1, s2], &t, &MergePolicy::SingleStructure);
        assert_eq!(out.len(), 1);
        // The merged structure must conservatively cover both: g is unknown.
        assert_eq!(out[0].nullary(&t, g), Kleene::Unknown);
    }

    #[test]
    fn relevant_iso_merges_only_matching_relevant_parts() {
        let (t, x, rel, _g) = table();
        let mk = |relevant_x: Kleene, irrelevant_nodes: usize| {
            let mut s = Structure::new(&t);
            let u = s.add_node(&t); // relevant node
            s.set_unary(&t, rel, u, Kleene::True);
            s.set_unary(&t, x, u, relevant_x);
            for _ in 0..irrelevant_nodes {
                s.add_node(&t);
            }
            s
        };
        // Same relevant part, different irrelevant heap parts (1 node vs a
        // summary of 2) → merged into one structure.
        let a = mk(Kleene::True, 1);
        let b = mk(Kleene::True, 2);
        // Different relevant part → kept separate.
        let c = mk(Kleene::False, 1);
        let out = merge_all(&[a, b, c], &t, &MergePolicy::RelevantIso(rel));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn outputs_are_blurred_and_unique() {
        let (t, x, _rel, g) = table();
        let mut s = Structure::new(&t);
        // two indistinguishable nodes → blur collapses them
        s.add_node(&t);
        s.add_node(&t);
        let out = merge_all(&[s], &t, &MergePolicy::Powerset);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].node_count(), 1);
        let _ = (x, g);
    }
}
