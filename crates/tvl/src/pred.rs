//! Predicate registry.
//!
//! A verification problem instance fixes a vocabulary of predicates over
//! heap-allocated individuals (paper Tables 1 and 2): nullary predicates model
//! boolean program variables, unary predicates model reference variables,
//! boolean fields and object properties (`chosen`, `relevant`, ...), and
//! binary predicates model reference fields.
//!
//! Every structure in this crate is interpreted against a [`PredTable`].
//! The table also records *semantic attributes* of predicates that drive
//! canonical abstraction ([`PredFlags::abstraction`]) and the coerce
//! constraints ([`PredFlags::unique`], [`PredFlags::function`]).

use std::collections::HashMap;
use std::fmt;

use crate::formula::Formula;

/// Identifier of a predicate registered in a [`PredTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(pub(crate) u32);

impl PredId {
    /// Raw index of this predicate in its table (registration order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Number of individual arguments a predicate takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arity {
    /// Properties of the global state (boolean variables).
    Nullary,
    /// Properties of one individual (reference variables, boolean fields).
    Unary,
    /// Relations between two individuals (reference fields).
    Binary,
}

/// Semantic attributes of a predicate.
///
/// The defaults (`PredFlags::default()`) describe an ordinary core predicate
/// that does not participate in abstraction and carries no integrity
/// constraints.
#[derive(Debug, Default, Clone)]
pub struct PredFlags {
    /// Unary predicates only: participates in canonical abstraction —
    /// individuals are merged iff they agree on all abstraction predicates.
    pub abstraction: bool,
    /// Unary predicates only: holds for at most one individual in any concrete
    /// state (e.g. a reference variable points to at most one object).
    /// Exploited by [`crate::coerce()`].
    pub unique: bool,
    /// Binary predicates only: relates each source individual to at most one
    /// target (e.g. a reference field). Exploited by [`crate::coerce()`].
    pub function: bool,
    /// Defining formula for an *instrumentation* predicate. Coerce uses it as
    /// a consistency constraint; `None` marks a core predicate.
    pub defining: Option<Formula>,
}

impl PredFlags {
    /// Flags for a reference program variable: unique and abstraction-relevant.
    pub fn reference_variable() -> PredFlags {
        PredFlags {
            abstraction: true,
            unique: true,
            ..PredFlags::default()
        }
    }

    /// Flags for a reference field: a partial function between individuals.
    pub fn reference_field() -> PredFlags {
        PredFlags {
            function: true,
            ..PredFlags::default()
        }
    }

    /// Flags for a boolean field tracked as an abstraction predicate
    /// (typestate bits such as `closed`).
    pub fn boolean_field() -> PredFlags {
        PredFlags {
            abstraction: true,
            ..PredFlags::default()
        }
    }

    /// Flags for a type/allocation-site predicate: immutable per individual,
    /// participates in abstraction.
    pub fn site() -> PredFlags {
        PredFlags {
            abstraction: true,
            ..PredFlags::default()
        }
    }
}

#[derive(Debug, Clone)]
struct PredInfo {
    name: String,
    arity: Arity,
    flags: PredFlags,
    /// Slot within the per-arity storage of a [`crate::Structure`].
    slot: u32,
}

/// Registry of the predicate vocabulary of an analysis instance.
///
/// # Example
///
/// ```
/// use hetsep_tvl::{PredTable, PredFlags, Arity};
/// let mut t = PredTable::new();
/// let x = t.add_unary("x", PredFlags::reference_variable());
/// let f = t.add_binary("f", PredFlags::reference_field());
/// assert_eq!(t.name(x), "x");
/// assert_eq!(t.arity(f), Arity::Binary);
/// assert_eq!(t.lookup("x"), Some(x));
/// ```
#[derive(Debug, Default, Clone)]
pub struct PredTable {
    preds: Vec<PredInfo>,
    by_name: HashMap<String, PredId>,
    nullary_count: u32,
    unary_count: u32,
    binary_count: u32,
    /// The built-in summary predicate `sm`.
    sm: Option<PredId>,
    /// The built-in allocation marker predicate `isnew`.
    isnew: Option<PredId>,
}

impl PredTable {
    /// Creates an empty table and registers the built-in predicates `sm`
    /// (summary) and `isnew` (allocation marker); both are unary and
    /// non-abstraction.
    pub fn new() -> PredTable {
        let mut t = PredTable::default();
        let sm = t.add_unary("sm", PredFlags::default());
        t.sm = Some(sm);
        let isnew = t.add_unary("isnew", PredFlags::default());
        t.isnew = Some(isnew);
        t
    }

    fn add(&mut self, name: &str, arity: Arity, flags: PredFlags) -> PredId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate predicate name {name:?}"
        );
        if flags.abstraction || flags.unique {
            assert_eq!(arity, Arity::Unary, "{name}: abstraction/unique predicates must be unary");
        }
        if flags.function {
            assert_eq!(arity, Arity::Binary, "{name}: functional predicates must be binary");
        }
        let slot = match arity {
            Arity::Nullary => {
                self.nullary_count += 1;
                self.nullary_count - 1
            }
            Arity::Unary => {
                self.unary_count += 1;
                self.unary_count - 1
            }
            Arity::Binary => {
                self.binary_count += 1;
                self.binary_count - 1
            }
        };
        let id = PredId(self.preds.len() as u32);
        self.preds.push(PredInfo {
            name: name.to_owned(),
            arity,
            flags,
            slot,
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Registers a nullary predicate.
    ///
    /// # Panics
    ///
    /// Panics when the name is already registered or flags are inconsistent
    /// with the arity.
    pub fn add_nullary(&mut self, name: &str, flags: PredFlags) -> PredId {
        self.add(name, Arity::Nullary, flags)
    }

    /// Registers a unary predicate.
    ///
    /// # Panics
    ///
    /// Panics when the name is already registered or flags are inconsistent
    /// with the arity.
    pub fn add_unary(&mut self, name: &str, flags: PredFlags) -> PredId {
        self.add(name, Arity::Unary, flags)
    }

    /// Registers a binary predicate.
    ///
    /// # Panics
    ///
    /// Panics when the name is already registered or flags are inconsistent
    /// with the arity.
    pub fn add_binary(&mut self, name: &str, flags: PredFlags) -> PredId {
        self.add(name, Arity::Binary, flags)
    }

    /// The built-in summary predicate `sm`: `sm(u) = 1/2` marks a summary
    /// node that may represent several concrete individuals.
    pub fn sm(&self) -> PredId {
        self.sm.expect("PredTable::new registers sm")
    }

    /// The built-in allocation marker `isnew`: during the update phase of an
    /// allocating action it holds exactly for the freshly created individual,
    /// and is reset to `False` afterwards (see [`crate::action::Action`]).
    pub fn isnew(&self) -> PredId {
        self.isnew.expect("PredTable::new registers isnew")
    }

    /// Looks up a predicate by name.
    pub fn lookup(&self, name: &str) -> Option<PredId> {
        self.by_name.get(name).copied()
    }

    /// Name the predicate was registered under.
    pub fn name(&self, id: PredId) -> &str {
        &self.preds[id.index()].name
    }

    /// Arity of the predicate.
    pub fn arity(&self, id: PredId) -> Arity {
        self.preds[id.index()].arity
    }

    /// Semantic attributes of the predicate.
    pub fn flags(&self, id: PredId) -> &PredFlags {
        &self.preds[id.index()].flags
    }

    /// Replaces the semantic attributes of a predicate.
    ///
    /// Used by higher layers to toggle the abstraction-predicate set, e.g.
    /// when switching between homogeneous and heterogeneous abstraction.
    ///
    /// # Panics
    ///
    /// Panics if the new flags are inconsistent with the predicate's arity.
    pub fn set_flags(&mut self, id: PredId, flags: PredFlags) {
        let arity = self.arity(id);
        if flags.abstraction || flags.unique {
            assert_eq!(arity, Arity::Unary);
        }
        if flags.function {
            assert_eq!(arity, Arity::Binary);
        }
        self.preds[id.index()].flags = flags;
    }

    /// Storage slot of the predicate within its arity class.
    pub(crate) fn slot(&self, id: PredId) -> usize {
        self.preds[id.index()].slot as usize
    }

    /// Number of registered nullary predicates.
    pub fn nullary_count(&self) -> usize {
        self.nullary_count as usize
    }

    /// Number of registered unary predicates (including `sm`).
    pub fn unary_count(&self) -> usize {
        self.unary_count as usize
    }

    /// Number of registered binary predicates.
    pub fn binary_count(&self) -> usize {
        self.binary_count as usize
    }

    /// Total number of registered predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether no predicate has been registered (never true: `sm` is built in).
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Iterates over all predicate ids in registration order.
    pub fn iter(&self) -> impl Iterator<Item = PredId> + '_ {
        (0..self.preds.len() as u32).map(PredId)
    }

    /// Iterates over predicates of the given arity.
    pub fn iter_arity(&self, arity: Arity) -> impl Iterator<Item = PredId> + '_ {
        self.iter().filter(move |&p| self.arity(p) == arity)
    }

    /// Unary predicates that currently participate in canonical abstraction.
    pub fn abstraction_preds(&self) -> Vec<PredId> {
        self.iter()
            .filter(|&p| self.flags(p).abstraction)
            .collect()
    }

    /// Unary predicates marked `unique`.
    pub fn unique_preds(&self) -> Vec<PredId> {
        self.iter().filter(|&p| self.flags(p).unique).collect()
    }

    /// Binary predicates marked `function`.
    pub fn function_preds(&self) -> Vec<PredId> {
        self.iter().filter(|&p| self.flags(p).function).collect()
    }

    /// Predicates that carry a defining formula (instrumentation predicates).
    pub fn instrumentation_preds(&self) -> Vec<PredId> {
        self.iter()
            .filter(|&p| self.flags(p).defining.is_some())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_and_lookup() {
        let mut t = PredTable::new();
        let x = t.add_unary("x", PredFlags::reference_variable());
        let n = t.add_binary("next", PredFlags::reference_field());
        let b = t.add_nullary("flag", PredFlags::default());
        assert_eq!(t.lookup("x"), Some(x));
        assert_eq!(t.lookup("next"), Some(n));
        assert_eq!(t.lookup("flag"), Some(b));
        assert_eq!(t.lookup("missing"), None);
        assert_eq!(t.arity(x), Arity::Unary);
        assert_eq!(t.arity(n), Arity::Binary);
        assert_eq!(t.arity(b), Arity::Nullary);
        assert_eq!(t.name(x), "x");
    }

    #[test]
    fn sm_is_builtin() {
        let t = PredTable::new();
        let sm = t.sm();
        assert_eq!(t.name(sm), "sm");
        assert_eq!(t.arity(sm), Arity::Unary);
        assert!(!t.flags(sm).abstraction);
    }

    #[test]
    fn slots_are_per_arity() {
        let mut t = PredTable::new();
        let a = t.add_unary("a", PredFlags::default());
        let f = t.add_binary("f", PredFlags::default());
        let g = t.add_binary("g", PredFlags::default());
        let b = t.add_unary("b", PredFlags::default());
        // sm occupies unary slot 0, isnew slot 1.
        assert_eq!(t.slot(a), 2);
        assert_eq!(t.slot(b), 3);
        assert_eq!(t.slot(f), 0);
        assert_eq!(t.slot(g), 1);
        assert_eq!(t.unary_count(), 4);
        assert_eq!(t.binary_count(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate predicate name")]
    fn duplicate_names_rejected() {
        let mut t = PredTable::new();
        t.add_unary("x", PredFlags::default());
        t.add_unary("x", PredFlags::default());
    }

    #[test]
    #[should_panic(expected = "must be unary")]
    fn abstraction_requires_unary() {
        let mut t = PredTable::new();
        t.add_binary(
            "f",
            PredFlags {
                abstraction: true,
                ..PredFlags::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "must be binary")]
    fn function_requires_binary() {
        let mut t = PredTable::new();
        t.add_unary(
            "x",
            PredFlags {
                function: true,
                ..PredFlags::default()
            },
        );
    }

    #[test]
    fn categorized_iterators() {
        let mut t = PredTable::new();
        let x = t.add_unary("x", PredFlags::reference_variable());
        let f = t.add_binary("f", PredFlags::reference_field());
        let c = t.add_unary("closed", PredFlags::boolean_field());
        assert_eq!(t.unique_preds(), vec![x]);
        assert_eq!(t.function_preds(), vec![f]);
        assert_eq!(t.abstraction_preds(), vec![x, c]);
        assert_eq!(t.iter_arity(Arity::Binary).count(), 1);
    }

    #[test]
    fn set_flags_toggles_abstraction() {
        let mut t = PredTable::new();
        let x = t.add_unary("x", PredFlags::default());
        assert!(t.abstraction_preds().is_empty());
        t.set_flags(
            x,
            PredFlags {
                abstraction: true,
                ..PredFlags::default()
            },
        );
        assert_eq!(t.abstraction_preds(), vec![x]);
    }
}
