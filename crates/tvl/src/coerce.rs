//! Coerce: constraint-driven sharpening.
//!
//! After focus and predicate update, a structure may contain indefinite
//! values that are incompatible with the integrity constraints of the
//! vocabulary — e.g. a reference variable (a *unique* predicate) cannot point
//! to two individuals, and a reference field (a *functional* predicate)
//! leaves each individual along at most one edge. The coerce operation
//! (paper §5, following TVLA) repeatedly:
//!
//! * sharpens `1/2` values whose definite value is forced by a constraint,
//! * shrinks summary nodes (`sm := 0`) that are forced to represent exactly
//!   one individual,
//! * discards structures whose definite values contradict a constraint
//!   (infeasible states).
//!
//! Constraints come from three sources: `unique` unary predicates,
//! `function` binary predicates, and the defining formulas of
//! instrumentation predicates.
//!
//! The constraint set depends only on the vocabulary, never on the structure
//! being coerced, so it is compiled once per [`PredTable`] into a
//! [`CoercePlan`] — predicate-indexed constraint lists with the defining
//! formulas and their variable bindings resolved up front. Hot callers (the
//! analysis engine's action-application loop) build the plan once per run
//! and use [`coerce_with`]; the plan-free [`coerce`] entry point compiles a
//! fresh plan per call and is equivalent.

use crate::bits;
use crate::eval::{eval_closed, eval_memo, Assignment, TcMemo};
use crate::formula::{Formula, Var};
use crate::kleene::Kleene;
use crate::pred::{Arity, PredId, PredTable};
use crate::structure::{NodeId, Structure};

/// Result of coercing a structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoerceOutcome {
    /// The structure is consistent; the payload is the (possibly sharpened)
    /// structure.
    Feasible(Structure),
    /// The structure's definite values contradict an integrity constraint;
    /// it represents no concrete state and must be discarded.
    Infeasible,
}

impl CoerceOutcome {
    /// Extracts the feasible structure, if any.
    pub fn feasible(self) -> Option<Structure> {
        match self {
            CoerceOutcome::Feasible(s) => Some(s),
            CoerceOutcome::Infeasible => None,
        }
    }
}

/// A single precompiled instrumentation constraint: the predicate, its
/// defining formula, and the formula's free variables resolved once.
#[derive(Debug, Clone)]
struct InstrRule {
    pred: PredId,
    arity: Arity,
    defining: Formula,
    /// Binding variable for unary rules / source variable for binary rules.
    va: Var,
    /// Target variable for binary rules (unused otherwise).
    vb: Var,
}

/// The coerce constraint set of one vocabulary, compiled into
/// predicate-indexed lists so the per-application loop never walks the full
/// predicate table or re-derives formula metadata.
#[derive(Debug, Clone)]
pub struct CoercePlan {
    unique: Vec<PredId>,
    function: Vec<PredId>,
    instr: Vec<InstrRule>,
}

impl CoercePlan {
    /// Compiles the constraint lists for `table`. The plan is only valid for
    /// structures over the same vocabulary.
    pub fn new(table: &PredTable) -> Self {
        let unique = table.unique_preds();
        let function = table.function_preds();
        let instr = table
            .instrumentation_preds()
            .into_iter()
            .map(|p| {
                let defining = table
                    .flags(p)
                    .defining
                    .clone()
                    .expect("instrumentation_preds filtered on defining");
                let arity = table.arity(p);
                let free = defining.free_vars();
                let (va, vb) = match arity {
                    Arity::Nullary => (Var(0), Var(1)),
                    Arity::Unary => {
                        debug_assert!(free.len() <= 1, "unary instrumentation formula arity");
                        (free.first().copied().unwrap_or(Var(0)), Var(1))
                    }
                    Arity::Binary => {
                        debug_assert!(free.len() <= 2, "binary instrumentation formula arity");
                        match free.as_slice() {
                            [a, b] => (*a, *b),
                            [a] => (*a, Var(a.0 + 1)),
                            [] => (Var(0), Var(1)),
                            _ => unreachable!(),
                        }
                    }
                };
                InstrRule { pred: p, arity, defining, va, vb }
            })
            .collect();
        CoercePlan { unique, function, instr }
    }
}

/// Applies all integrity constraints to fixpoint.
///
/// Compiles a fresh [`CoercePlan`] per call; hot loops should compile the
/// plan once and call [`coerce_with`].
pub fn coerce(s: &Structure, table: &PredTable) -> CoerceOutcome {
    coerce_with(s, table, &CoercePlan::new(table))
}

/// Applies all integrity constraints to fixpoint using a precompiled plan.
pub fn coerce_with(s: &Structure, table: &PredTable, plan: &CoercePlan) -> CoerceOutcome {
    let mut cur = s.clone();
    #[cfg(debug_assertions)]
    cur.debug_check_invariants();
    loop {
        let mut changed = false;
        if !apply_unique(&mut cur, table, plan, &mut changed) {
            return CoerceOutcome::Infeasible;
        }
        if !apply_function(&mut cur, table, plan, &mut changed) {
            return CoerceOutcome::Infeasible;
        }
        if !apply_instrumentation(&mut cur, table, plan, &mut changed) {
            return CoerceOutcome::Infeasible;
        }
        if !changed {
            return CoerceOutcome::Feasible(cur);
        }
    }
}

/// `unique` unary predicates hold for at most one concrete individual.
///
/// Runs on the bitplanes directly: the definite holders are the `t`-plane
/// population count, and "clear every other `1/2` candidate" is zeroing the
/// slot's `h`-plane (the holder's `h` bit is already 0 by the `t & h`
/// invariant), one word store per 64 nodes.
fn apply_unique(s: &mut Structure, table: &PredTable, plan: &CoercePlan, changed: &mut bool) -> bool {
    for &p in &plan.unique {
        let slot = table.slot(p);
        let (holders, holder, has_half) = {
            let (t, h) = s.unary_planes(slot);
            (bits::count_set(t), bits::first_set(t), bits::any_set(h))
        };
        if holders >= 2 {
            // Two distinct nodes each definitely carry p: since every node
            // denotes at least one individual, p holds for ≥ 2 individuals.
            return false;
        }
        if let Some(holder) = holder {
            // No other node may carry p.
            if has_half {
                let (_, h) = s.unary_planes_mut(slot);
                h.fill(0);
                *changed = true;
            }
            // A summary node on which p definitely holds represents nodes
            // that all carry p; uniqueness forces it to be a single
            // individual.
            let holder = NodeId::from_index(holder);
            if s.is_summary(table, holder) {
                s.set_summary(table, holder, false);
                *changed = true;
            }
        }
    }
    true
}

/// `function` binary predicates relate each source individual to at most one
/// target.
fn apply_function(
    s: &mut Structure,
    table: &PredTable,
    plan: &CoercePlan,
    changed: &mut bool,
) -> bool {
    for &f in &plan.function {
        let slot = table.slot(f);
        for src in s.nodes() {
            if s.is_summary(table, src) {
                // Distinct members of a summary source may have distinct
                // targets; no sharpening is possible.
                continue;
            }
            // One plane row per source: definite targets are the row's
            // `t`-plane bits, and dropping the remaining `1/2` targets is a
            // word-wise zeroing of its `h`-plane (the target's own `h` bit
            // is 0 by the `t & h` invariant).
            let (targets, target, has_half) = {
                let (t, h) = s.binary_row(slot, src.index());
                (bits::count_set(t), bits::first_set(t), bits::any_set(h))
            };
            if targets >= 2 {
                return false;
            }
            if let Some(target) = target {
                if has_half {
                    let (_, h) = s.binary_row_mut(slot, src.index());
                    h.fill(0);
                    *changed = true;
                }
                // A definite edge into a summary target means the single
                // source individual points to *every* member: functionality
                // forces the target to be a single individual.
                let target = NodeId::from_index(target);
                if s.is_summary(table, target) {
                    s.set_summary(table, target, false);
                    *changed = true;
                }
            }
        }
    }
    true
}

/// Stored instrumentation-predicate values must be consistent with their
/// defining formulas; definite evaluations sharpen stored `1/2`s, and
/// definite disagreements make the structure infeasible.
fn apply_instrumentation(
    s: &mut Structure,
    table: &PredTable,
    plan: &CoercePlan,
    changed: &mut bool,
) -> bool {
    // TC matrices are shared across rules and nodes while `s` is unchanged;
    // every sharpening write invalidates them (see `TcMemo`).
    let mut memo = TcMemo::new();
    for rule in &plan.instr {
        let p = rule.pred;
        match rule.arity {
            Arity::Nullary => {
                let stored = s.nullary(table, p);
                let evaled = eval_closed(s, table, &rule.defining);
                match reconcile(stored, evaled) {
                    Reconciled::Conflict => return false,
                    Reconciled::Sharpen(v) => {
                        s.set_nullary(table, p, v);
                        memo.clear();
                        *changed = true;
                    }
                    Reconciled::Keep => {}
                }
            }
            Arity::Unary => {
                for u in s.nodes() {
                    let stored = s.unary(table, p, u);
                    let mut asg = Assignment::of([(rule.va, u)]);
                    let evaled = eval_memo(s, table, &rule.defining, &mut asg, &mut memo);
                    match reconcile(stored, evaled) {
                        Reconciled::Conflict => return false,
                        Reconciled::Sharpen(v) => {
                            s.set_unary(table, p, u, v);
                            memo.clear();
                            *changed = true;
                        }
                        Reconciled::Keep => {}
                    }
                }
            }
            Arity::Binary => {
                for src in s.nodes() {
                    for dst in s.nodes() {
                        let stored = s.binary(table, p, src, dst);
                        let mut asg = Assignment::of([(rule.va, src), (rule.vb, dst)]);
                        let evaled = eval_memo(s, table, &rule.defining, &mut asg, &mut memo);
                        match reconcile(stored, evaled) {
                            Reconciled::Conflict => return false,
                            Reconciled::Sharpen(v) => {
                                s.set_binary(table, p, src, dst, v);
                                memo.clear();
                                *changed = true;
                            }
                            Reconciled::Keep => {}
                        }
                    }
                }
            }
        }
    }
    true
}

enum Reconciled {
    Conflict,
    Sharpen(Kleene),
    Keep,
}

fn reconcile(stored: Kleene, evaled: Kleene) -> Reconciled {
    match (stored, evaled) {
        (a, b) if a == b => Reconciled::Keep,
        (Kleene::Unknown, v) if v.is_definite() => Reconciled::Sharpen(v),
        (_, Kleene::Unknown) => Reconciled::Keep,
        _ => Reconciled::Conflict, // both definite and different
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;
    use crate::pred::{PredFlags, PredId};

    fn table() -> (PredTable, PredId, PredId) {
        let mut t = PredTable::new();
        let x = t.add_unary("x", PredFlags::reference_variable());
        let f = t.add_binary("f", PredFlags::reference_field());
        (t, x, f)
    }

    #[test]
    fn unique_two_definite_holders_is_infeasible() {
        let (t, x, _f) = table();
        let mut s = Structure::new(&t);
        let a = s.add_node(&t);
        let b = s.add_node(&t);
        s.set_unary(&t, x, a, Kleene::True);
        s.set_unary(&t, x, b, Kleene::True);
        assert_eq!(coerce(&s, &t), CoerceOutcome::Infeasible);
    }

    #[test]
    fn unique_sharpens_other_candidates() {
        let (t, x, _f) = table();
        let mut s = Structure::new(&t);
        let a = s.add_node(&t);
        let b = s.add_node(&t);
        s.set_unary(&t, x, a, Kleene::True);
        s.set_unary(&t, x, b, Kleene::Unknown);
        let out = coerce(&s, &t).feasible().unwrap();
        assert_eq!(out.unary(&t, x, b), Kleene::False);
    }

    #[test]
    fn unique_shrinks_summary_holder() {
        let (t, x, _f) = table();
        let mut s = Structure::new(&t);
        let a = s.add_node(&t);
        s.set_summary(&t, a, true);
        s.set_unary(&t, x, a, Kleene::True);
        let out = coerce(&s, &t).feasible().unwrap();
        assert!(!out.is_summary(&t, a), "x unique forces |a| = 1");
    }

    #[test]
    fn function_conflicting_targets_infeasible() {
        let (t, _x, f) = table();
        let mut s = Structure::new(&t);
        let a = s.add_node(&t);
        let b = s.add_node(&t);
        let c = s.add_node(&t);
        s.set_binary(&t, f, a, b, Kleene::True);
        s.set_binary(&t, f, a, c, Kleene::True);
        assert_eq!(coerce(&s, &t), CoerceOutcome::Infeasible);
    }

    #[test]
    fn function_sharpens_alternatives_and_target_summary() {
        let (t, _x, f) = table();
        let mut s = Structure::new(&t);
        let a = s.add_node(&t);
        let b = s.add_node(&t);
        let c = s.add_node(&t);
        s.set_summary(&t, b, true);
        s.set_binary(&t, f, a, b, Kleene::True);
        s.set_binary(&t, f, a, c, Kleene::Unknown);
        let out = coerce(&s, &t).feasible().unwrap();
        assert_eq!(out.binary(&t, f, a, c), Kleene::False);
        assert!(!out.is_summary(&t, b), "definite edge into summary shrinks it");
    }

    #[test]
    fn function_does_not_sharpen_from_summary_source() {
        let (t, _x, f) = table();
        let mut s = Structure::new(&t);
        let a = s.add_node(&t);
        let b = s.add_node(&t);
        let c = s.add_node(&t);
        s.set_summary(&t, a, true);
        s.set_binary(&t, f, a, b, Kleene::True);
        s.set_binary(&t, f, a, c, Kleene::Unknown);
        let out = coerce(&s, &t).feasible().unwrap();
        assert_eq!(out.binary(&t, f, a, c), Kleene::Unknown);
    }

    #[test]
    fn instrumentation_sharpened_from_definition() {
        let (mut t, x, _f) = table();
        // inst(v) defined as x(v)
        let inst = t.add_unary(
            "inst",
            PredFlags {
                defining: Some(Formula::unary(x, Var(0))),
                ..PredFlags::default()
            },
        );
        let mut s = Structure::new(&t);
        let a = s.add_node(&t);
        s.set_unary(&t, x, a, Kleene::True);
        s.set_unary(&t, inst, a, Kleene::Unknown);
        let out = coerce(&s, &t).feasible().unwrap();
        assert_eq!(out.unary(&t, inst, a), Kleene::True);
    }

    #[test]
    fn instrumentation_conflict_is_infeasible() {
        let (mut t, x, _f) = table();
        let inst = t.add_unary(
            "inst",
            PredFlags {
                defining: Some(Formula::unary(x, Var(0))),
                ..PredFlags::default()
            },
        );
        let mut s = Structure::new(&t);
        let a = s.add_node(&t);
        s.set_unary(&t, x, a, Kleene::True);
        s.set_unary(&t, inst, a, Kleene::False);
        assert_eq!(coerce(&s, &t), CoerceOutcome::Infeasible);
    }

    #[test]
    fn instrumentation_sharpening_feeds_uniqueness() {
        // Sharpening from one rule can enable another: inst := x (definite)
        // then inst unique removes candidates elsewhere.
        let (mut t, x, _f) = table();
        let inst = t.add_unary(
            "inst",
            PredFlags {
                unique: true,
                defining: Some(Formula::unary(x, Var(0))),
                ..PredFlags::default()
            },
        );
        let mut s = Structure::new(&t);
        let a = s.add_node(&t);
        let b = s.add_node(&t);
        s.set_unary(&t, x, a, Kleene::True);
        s.set_unary(&t, inst, a, Kleene::Unknown);
        s.set_unary(&t, inst, b, Kleene::Unknown);
        // x(b) = False so inst(b) sharpens to False via the definition; and
        // inst(a) sharpens to True via the definition.
        let out = coerce(&s, &t).feasible().unwrap();
        assert_eq!(out.unary(&t, inst, a), Kleene::True);
        assert_eq!(out.unary(&t, inst, b), Kleene::False);
    }

    #[test]
    fn consistent_structure_is_fixpoint() {
        let (t, x, f) = table();
        let mut s = Structure::new(&t);
        let a = s.add_node(&t);
        let b = s.add_node(&t);
        s.set_unary(&t, x, a, Kleene::True);
        s.set_binary(&t, f, a, b, Kleene::True);
        let out = coerce(&s, &t).feasible().unwrap();
        assert_eq!(out, s);
    }
}
