//! Kleene three-valued truth values.
//!
//! The third value [`Kleene::Unknown`] (written `1/2` in the paper) denotes a
//! value that may be either `0` or `1`. Logical connectives follow Kleene's
//! strong three-valued semantics; the *information order* (`0 ⊑ 1/2`,
//! `1 ⊑ 1/2`) is exposed through [`Kleene::join`] and [`Kleene::le_info`].

use std::fmt;
use std::ops::{BitAnd, BitOr, Not};

/// A truth value of Kleene's strong three-valued logic.
///
/// `False` and `True` are the *definite* values; `Unknown` (the paper's `1/2`)
/// subsumes both in the information order.
///
/// # Example
///
/// ```
/// use hetsep_tvl::Kleene;
/// assert_eq!(Kleene::True & Kleene::Unknown, Kleene::Unknown);
/// assert_eq!(Kleene::False & Kleene::Unknown, Kleene::False);
/// assert_eq!(!Kleene::Unknown, Kleene::Unknown);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Kleene {
    /// Definitely false (`0`).
    #[default]
    False,
    /// May be false or true (`1/2`).
    Unknown,
    /// Definitely true (`1`).
    True,
}

impl Kleene {
    /// All three truth values, in `False < Unknown < True` order.
    pub const ALL: [Kleene; 3] = [Kleene::False, Kleene::Unknown, Kleene::True];

    /// Converts a two-valued boolean into a definite truth value.
    #[inline]
    pub fn from_bool(b: bool) -> Kleene {
        if b {
            Kleene::True
        } else {
            Kleene::False
        }
    }

    /// Decodes the two-plane bit encoding used by [`crate::bits`]:
    /// `(t, h)` = `(false, false)` → `False`, `(false, true)` → `Unknown`,
    /// `(true, _)` → `True`.
    ///
    /// The planes maintain `t & h == 0`, so the `(true, true)` case cannot
    /// arise from well-formed storage; it decodes to `True` (the `t` plane
    /// wins) to keep the function total.
    #[inline]
    pub fn from_bits(t: bool, h: bool) -> Kleene {
        if t {
            Kleene::True
        } else if h {
            Kleene::Unknown
        } else {
            Kleene::False
        }
    }

    /// Encodes the value for two-plane bit storage; inverse of
    /// [`Kleene::from_bits`]. The returned pair never has both bits set.
    #[inline]
    pub fn to_bits(self) -> (bool, bool) {
        match self {
            Kleene::False => (false, false),
            Kleene::Unknown => (false, true),
            Kleene::True => (true, false),
        }
    }

    /// Returns `true` when the value is `False` or `True` (not `1/2`).
    #[inline]
    pub fn is_definite(self) -> bool {
        self != Kleene::Unknown
    }

    /// Returns `true` when the value is definitely `True`.
    #[inline]
    pub fn is_true(self) -> bool {
        self == Kleene::True
    }

    /// Returns `true` when the value is definitely `False`.
    #[inline]
    pub fn is_false(self) -> bool {
        self == Kleene::False
    }

    /// Returns `true` when the value *may* be true (`True` or `Unknown`).
    #[inline]
    pub fn maybe_true(self) -> bool {
        self != Kleene::False
    }

    /// Returns `true` when the value *may* be false (`False` or `Unknown`).
    #[inline]
    pub fn maybe_false(self) -> bool {
        self != Kleene::True
    }

    /// Kleene conjunction (minimum in the truth order `0 < 1/2 < 1`).
    #[inline]
    pub fn and(self, other: Kleene) -> Kleene {
        self.min(other)
    }

    /// Kleene disjunction (maximum in the truth order).
    #[inline]
    pub fn or(self, other: Kleene) -> Kleene {
        self.max(other)
    }

    /// Kleene negation: swaps `False`/`True`, fixes `Unknown`.
    #[inline]
    pub fn negate(self) -> Kleene {
        match self {
            Kleene::False => Kleene::True,
            Kleene::Unknown => Kleene::Unknown,
            Kleene::True => Kleene::False,
        }
    }

    /// Least upper bound in the *information order*: `x ⊔ x = x`, and the
    /// join of two distinct values is `Unknown`.
    ///
    /// This is the operation used when merging individuals or structures.
    #[inline]
    pub fn join(self, other: Kleene) -> Kleene {
        if self == other {
            self
        } else {
            Kleene::Unknown
        }
    }

    /// Information order: `a ⊑ b` iff `b` conservatively approximates `a`
    /// (`b == a` or `b == Unknown`).
    #[inline]
    pub fn le_info(self, other: Kleene) -> bool {
        self == other || other == Kleene::Unknown
    }

    /// Truth-order comparison used for monotonicity checks: `False < Unknown < True`.
    #[inline]
    pub fn le_truth(self, other: Kleene) -> bool {
        self <= other
    }
}

impl From<bool> for Kleene {
    fn from(b: bool) -> Kleene {
        Kleene::from_bool(b)
    }
}

impl BitAnd for Kleene {
    type Output = Kleene;
    fn bitand(self, rhs: Kleene) -> Kleene {
        self.and(rhs)
    }
}

impl BitOr for Kleene {
    type Output = Kleene;
    fn bitor(self, rhs: Kleene) -> Kleene {
        self.or(rhs)
    }
}

impl Not for Kleene {
    type Output = Kleene;
    fn not(self) -> Kleene {
        self.negate()
    }
}

impl fmt::Display for Kleene {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kleene::False => write!(f, "0"),
            Kleene::Unknown => write!(f, "1/2"),
            Kleene::True => write!(f, "1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables_and() {
        use Kleene::*;
        assert_eq!(True & True, True);
        assert_eq!(True & False, False);
        assert_eq!(True & Unknown, Unknown);
        assert_eq!(False & Unknown, False);
        assert_eq!(Unknown & Unknown, Unknown);
    }

    #[test]
    fn truth_tables_or() {
        use Kleene::*;
        assert_eq!(False | False, False);
        assert_eq!(False | True, True);
        assert_eq!(False | Unknown, Unknown);
        assert_eq!(True | Unknown, True);
        assert_eq!(Unknown | Unknown, Unknown);
    }

    #[test]
    fn negation_is_involutive() {
        for v in Kleene::ALL {
            assert_eq!(!!v, v);
        }
    }

    #[test]
    fn de_morgan() {
        for a in Kleene::ALL {
            for b in Kleene::ALL {
                assert_eq!(!(a & b), !a | !b);
                assert_eq!(!(a | b), !a & !b);
            }
        }
    }

    #[test]
    fn join_is_commutative_idempotent() {
        for a in Kleene::ALL {
            assert_eq!(a.join(a), a);
            for b in Kleene::ALL {
                assert_eq!(a.join(b), b.join(a));
                assert!(a.le_info(a.join(b)));
                assert!(b.le_info(a.join(b)));
            }
        }
    }

    #[test]
    fn info_order_top_is_unknown() {
        for a in Kleene::ALL {
            assert!(a.le_info(Kleene::Unknown));
        }
        assert!(!Kleene::Unknown.le_info(Kleene::True));
        assert!(!Kleene::True.le_info(Kleene::False));
    }

    #[test]
    fn connectives_monotone_in_info_order() {
        // If a ⊑ a' and b ⊑ b' then (a op b) ⊑ (a' op b').
        for a in Kleene::ALL {
            for ap in Kleene::ALL {
                if !a.le_info(ap) {
                    continue;
                }
                for b in Kleene::ALL {
                    for bp in Kleene::ALL {
                        if !b.le_info(bp) {
                            continue;
                        }
                        assert!((a & b).le_info(ap & bp));
                        assert!((a | b).le_info(ap | bp));
                    }
                }
                assert!((!a).le_info(!ap));
            }
        }
    }

    #[test]
    fn from_bool_roundtrip() {
        assert_eq!(Kleene::from(true), Kleene::True);
        assert_eq!(Kleene::from(false), Kleene::False);
        assert!(Kleene::from_bool(true).is_true());
        assert!(Kleene::from_bool(false).is_false());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Kleene::False.to_string(), "0");
        assert_eq!(Kleene::Unknown.to_string(), "1/2");
        assert_eq!(Kleene::True.to_string(), "1");
    }

    #[test]
    fn bit_encoding_roundtrips_and_orders() {
        for v in Kleene::ALL {
            let (t, h) = v.to_bits();
            assert!(!(t && h), "t/h planes are mutually exclusive");
            assert_eq!(Kleene::from_bits(t, h), v);
            // The 2-bit code (t << 1) | h preserves the truth order
            // False < Unknown < True, which canonical-name packing relies on.
            let code = ((t as u8) << 1) | h as u8;
            assert_eq!(code, v as u8);
        }
    }

    #[test]
    fn maybe_predicates() {
        assert!(Kleene::Unknown.maybe_true());
        assert!(Kleene::Unknown.maybe_false());
        assert!(!Kleene::False.maybe_true());
        assert!(!Kleene::True.maybe_false());
        assert!(Kleene::True.is_definite());
        assert!(!Kleene::Unknown.is_definite());
    }
}
