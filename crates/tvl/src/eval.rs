//! Three-valued evaluation of formulas over structures.
//!
//! Evaluation follows the standard 3-valued Kleene semantics of the
//! parametric framework: quantifiers fold their connective over the universe,
//! equality on a summary node yields `1/2`, and transitive closure is computed
//! as a relational fixpoint. The result is a *conservative* approximation: if
//! the structure embeds a concrete state, the concrete truth value is always
//! `⊑`-below the abstract one (soundness — see the embedding tests in
//! [`crate::embed`]).
//!
//! # Word-parallel kernels
//!
//! Two hot paths run directly on the two-plane bit representation of
//! [`Structure`] (see [`crate::bits`]):
//!
//! * **Quantifier folds** over an atomic body (`∃v. p(v)`, `∀v. ¬p(v)`,
//!   `∃v. f(u, v)`, …) reduce to plane emptiness tests — `any t bit` /
//!   `any h bit` / `any valid zero lane` — instead of an `n`-step
//!   evaluation loop.
//! * **Transitive closure** decomposes into two *boolean* closures: a path
//!   is `True` iff some path uses only `True` edges, and `≠ False` iff some
//!   path uses only `≠ False` edges. Each boolean closure is a bit-matrix
//!   Warshall pass whose inner step or-s whole 64-lane words, dropping the
//!   fixpoint from O(n³) element steps to O(n³/64) word steps.

use crate::bits;
use crate::formula::{Formula, Var};
use crate::kleene::Kleene;
use crate::pred::{Arity, PredTable};
use crate::structure::{NodeId, Structure};

/// A partial assignment of individuals to logical variables.
#[derive(Debug, Default, Clone)]
pub struct Assignment {
    slots: Vec<Option<NodeId>>,
}

impl Assignment {
    /// Creates an empty assignment.
    pub fn new() -> Assignment {
        Assignment::default()
    }

    /// Creates an assignment binding each `(var, node)` pair.
    pub fn of(bindings: impl IntoIterator<Item = (Var, NodeId)>) -> Assignment {
        let mut a = Assignment::new();
        for (v, n) in bindings {
            a.bind(v, n);
        }
        a
    }

    /// Binds `v` to `node`, growing the assignment as needed.
    pub fn bind(&mut self, v: Var, node: NodeId) {
        let ix = v.0 as usize;
        if self.slots.len() <= ix {
            self.slots.resize(ix + 1, None);
        }
        self.slots[ix] = Some(node);
    }

    /// Removes the binding of `v`, if any.
    pub fn unbind(&mut self, v: Var) {
        if let Some(slot) = self.slots.get_mut(v.0 as usize) {
            *slot = None;
        }
    }

    /// Current binding of `v`.
    pub fn get(&self, v: Var) -> Option<NodeId> {
        self.slots.get(v.0 as usize).copied().flatten()
    }

    /// Resolves a variable that the evaluator requires to be bound.
    ///
    /// Every caller either binds the variable itself (quantifiers, `Tc`) or
    /// documents that free variables of the formula must be bound, so a miss
    /// here is a caller contract violation, not a recoverable state — hence
    /// `unreachable!`, with the offending subformula for context.
    fn lookup(&self, v: Var, ctx: &Formula) -> NodeId {
        self.get(v).unwrap_or_else(|| {
            unreachable!(
                "unbound variable {v} while evaluating {ctx} — \
                 callers must bind every free variable before evaluation"
            )
        })
    }
}

/// A transitive-closure matrix in two-plane form: `t` holds the lanes whose
/// closure value is `True`, `m` the lanes whose value is `≠ False` (so
/// `t ⊆ m`, and a lane in `m \ t` is `Unknown`). Rows are `stride` words.
#[derive(Debug, Clone)]
struct TcBits {
    stride: usize,
    t: Vec<u64>,
    m: Vec<u64>,
}

impl TcBits {
    #[inline]
    fn get(&self, i: usize, j: usize) -> Kleene {
        let w = i * self.stride + (j >> 6);
        let b = (j & 63) as u32;
        let t = (self.t[w] >> b) & 1 != 0;
        let m = (self.m[w] >> b) & 1 != 0;
        Kleene::from_bits(t, m && !t)
    }
}

/// Memoizes transitive-closure matrices across many [`eval_memo`] calls
/// over the *same* structure.
///
/// Evaluating a `Tc` subformula costs a full relational fixpoint, and the
/// sweeps that dominate the analysis (predicate-update transformers, coerce
/// instrumentation rules) re-evaluate the same formula once per node or node
/// pair — recomputing an identical closure every time. A `TcMemo` carried
/// across one sweep caches the matrix per `Tc` body.
///
/// Entries are keyed by the body subformula's address, which identifies it
/// for as long as the formula borrow lives; a matrix is only cached when the
/// body's free variables are all bound by the `Tc` itself, making the
/// closure independent of the outer assignment. Callers must [`clear`] the
/// memo whenever the structure under evaluation changes — the cache is
/// exact, never heuristic, so a stale entry would be a soundness bug. Debug
/// builds enforce this: the memo remembers the fingerprint of the structure
/// it cached for and asserts on every cached read that the structure still
/// matches, so a mutation (e.g. a coerce sharpening step) that forgets to
/// `clear()` trips an assertion instead of silently reusing stale closures.
///
/// [`clear`]: TcMemo::clear
#[derive(Debug, Default)]
pub struct TcMemo {
    /// `(body address, closure)`; `None` marks a body whose closure depends
    /// on outer bindings and must be recomputed per call.
    entries: Vec<(usize, Option<TcBits>)>,
    /// Fingerprint of the structure the cached closures were computed over
    /// (debug builds only; see the stale-entry guard above).
    #[cfg(debug_assertions)]
    stamp: Option<u64>,
}

impl TcMemo {
    /// Creates an empty memo.
    pub fn new() -> TcMemo {
        TcMemo::default()
    }

    /// Drops all cached closures. Must be called when the structure being
    /// evaluated over is mutated.
    pub fn clear(&mut self) {
        self.entries.clear();
        #[cfg(debug_assertions)]
        {
            self.stamp = None;
        }
    }

    /// Stale-entry soundness guard (debug builds): records the structure's
    /// fingerprint on first use and asserts it is unchanged on every
    /// subsequent use, catching mutations that skipped [`TcMemo::clear`].
    #[cfg(debug_assertions)]
    fn check_stamp(&mut self, s: &Structure) {
        let fp = s.fingerprint();
        match self.stamp {
            None => self.stamp = Some(fp),
            Some(stamp) => debug_assert_eq!(
                stamp, fp,
                "TcMemo reused across a structure mutation without clear() — \
                 stale closure entries are a soundness bug"
            ),
        }
    }
}

/// Evaluates `formula` over `s` under `asg`.
///
/// # Panics
///
/// Panics if a free variable of `formula` is unbound in `asg`, or if a
/// predicate is applied at the wrong arity.
pub fn eval(s: &Structure, table: &PredTable, formula: &Formula, asg: &mut Assignment) -> Kleene {
    eval_memo(s, table, formula, asg, &mut TcMemo::new())
}

/// Like [`eval`], but reuses transitive-closure matrices cached in `memo`.
///
/// Sweeps that evaluate one formula at every node (pair) of a fixed
/// structure should share a single memo across the sweep; see [`TcMemo`]
/// for the invalidation contract.
pub fn eval_memo(
    s: &Structure,
    table: &PredTable,
    formula: &Formula,
    asg: &mut Assignment,
    memo: &mut TcMemo,
) -> Kleene {
    match formula {
        Formula::Const(k) => *k,
        Formula::Nullary(p) => s.nullary(table, *p),
        Formula::Unary(p, v) => s.unary(table, *p, asg.lookup(*v, formula)),
        Formula::Binary(p, a, b) => {
            s.binary(table, *p, asg.lookup(*a, formula), asg.lookup(*b, formula))
        }
        Formula::Eq(a, b) => {
            let (u, v) = (asg.lookup(*a, formula), asg.lookup(*b, formula));
            if u != v {
                Kleene::False
            } else if s.is_summary(table, u) {
                // A summary node may represent several distinct individuals.
                Kleene::Unknown
            } else {
                Kleene::True
            }
        }
        Formula::Not(f) => !eval_memo(s, table, f, asg, memo),
        Formula::And(l, r) => {
            let lv = eval_memo(s, table, l, asg, memo);
            if lv == Kleene::False {
                return Kleene::False;
            }
            lv & eval_memo(s, table, r, asg, memo)
        }
        Formula::Or(l, r) => {
            let lv = eval_memo(s, table, l, asg, memo);
            if lv == Kleene::True {
                return Kleene::True;
            }
            lv | eval_memo(s, table, r, asg, memo)
        }
        Formula::Exists(v, f) => {
            if let Some(val) = quantifier_fold(s, table, *v, f, asg, Quant::Exists) {
                return val;
            }
            let saved = asg.get(*v);
            let mut acc = Kleene::False;
            for u in s.nodes() {
                asg.bind(*v, u);
                acc = acc | eval_memo(s, table, f, asg, memo);
                if acc == Kleene::True {
                    break;
                }
            }
            restore(asg, *v, saved);
            acc
        }
        Formula::Forall(v, f) => {
            if let Some(val) = quantifier_fold(s, table, *v, f, asg, Quant::Forall) {
                return val;
            }
            let saved = asg.get(*v);
            let mut acc = Kleene::True;
            for u in s.nodes() {
                asg.bind(*v, u);
                acc = acc & eval_memo(s, table, f, asg, memo);
                if acc == Kleene::False {
                    break;
                }
            }
            restore(asg, *v, saved);
            acc
        }
        Formula::Tc { lhs, rhs, a, b, body } => {
            let (u, v) = (asg.lookup(*lhs, formula), asg.lookup(*rhs, formula));
            #[cfg(debug_assertions)]
            memo.check_stamp(s);
            let key = &**body as *const Formula as usize;
            if let Some((_, cached)) = memo.entries.iter().find(|(k, _)| *k == key) {
                return match cached {
                    Some(m) => m.get(u.index(), v.index()),
                    // Closure depends on outer bindings: recompute.
                    None => tc_closure(s, table, *a, *b, body, asg).get(u.index(), v.index()),
                };
            }
            let m = tc_closure(s, table, *a, *b, body, asg);
            let val = m.get(u.index(), v.index());
            let cacheable = body.free_vars().iter().all(|fv| fv == a || fv == b);
            memo.entries.push((key, cacheable.then_some(m)));
            val
        }
    }
}

fn restore(asg: &mut Assignment, v: Var, saved: Option<NodeId>) {
    match saved {
        Some(node) => asg.bind(v, node),
        None => asg.unbind(v),
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Quant {
    Exists,
    Forall,
}

/// Folds a quantifier whose body is a (possibly negated) atom directly over
/// the structure's bitplanes, avoiding the per-node evaluation loop.
///
/// Returns `None` when the body has no plane-level fast path (the caller then
/// falls back to the generic loop), or when a variable the atom needs is not
/// bound yet — the generic path produces the proper diagnostic.
///
/// The fold reproduces the loop's Kleene algebra exactly: for `∃` the result
/// is `True` if any lane is `True`, else `Unknown` if any lane is `Unknown`,
/// else `False`; `∀` dually. An empty universe folds to the connective's
/// unit (`False` for `∃`, `True` for `∀`), matching the empty loop.
fn quantifier_fold(
    s: &Structure,
    table: &PredTable,
    v: Var,
    body: &Formula,
    asg: &Assignment,
    q: Quant,
) -> Option<Kleene> {
    let (atom, negated) = match body {
        Formula::Not(inner) => (&**inner, true),
        other => (other, false),
    };
    match atom {
        Formula::Unary(p, pv) if *pv == v && table.arity(*p) == Arity::Unary => {
            let (t, h) = s.unary_planes(table.slot(*p));
            Some(fold_planes(t, h, s.node_count(), negated, q))
        }
        Formula::Binary(p, pa, pb)
            if *pb == v && *pa != v && table.arity(*p) == Arity::Binary =>
        {
            let src = asg.get(*pa)?;
            let (t, h) = s.binary_row(table.slot(*p), src.index());
            Some(fold_planes(t, h, s.node_count(), negated, q))
        }
        Formula::Binary(p, pa, pb)
            if *pa == v && *pb != v && table.arity(*p) == Arity::Binary =>
        {
            // Column fold: one bit probe per source row.
            let dst = asg.get(*pb)?.index();
            let slot = table.slot(*p);
            let (mut has_t, mut has_h, mut has_f) = (false, false, false);
            for src in 0..s.node_count() {
                match s.get_b(slot, src, dst) {
                    Kleene::True => has_t = true,
                    Kleene::Unknown => has_h = true,
                    Kleene::False => has_f = true,
                }
                // Stop as soon as the decisive lane for this quantifier
                // appeared (True for ∃, False for ∀ — swapped when negated).
                let decisive = match (q, negated) {
                    (Quant::Exists, false) | (Quant::Forall, true) => has_t,
                    (Quant::Exists, true) | (Quant::Forall, false) => has_f,
                };
                if decisive {
                    break;
                }
            }
            Some(decide(has_t, has_h, has_f, negated, q))
        }
        _ => None,
    }
}

/// Folds one plane row (`n` lanes) under a quantifier; see
/// [`quantifier_fold`] for the semantics.
fn fold_planes(t: &[u64], h: &[u64], n: usize, negated: bool, q: Quant) -> Kleene {
    let has_t = bits::any_set(t);
    let has_h = bits::any_set(h);
    let has_f = bits::any_false(t, h, n);
    decide(has_t, has_h, has_f, negated, q)
}

/// Combines lane-presence flags into the quantifier's folded value.
fn decide(has_t: bool, has_h: bool, has_f: bool, negated: bool, q: Quant) -> Kleene {
    let (has_t, has_f) = if negated { (has_f, has_t) } else { (has_t, has_f) };
    match q {
        Quant::Exists => {
            if has_t {
                Kleene::True
            } else if has_h {
                Kleene::Unknown
            } else {
                Kleene::False
            }
        }
        Quant::Forall => {
            if has_f {
                Kleene::False
            } else if has_h {
                Kleene::Unknown
            } else {
                Kleene::True
            }
        }
    }
}

/// Computes the 3-valued transitive closure matrix of the step relation
/// `body(a, b)` under the current outer assignment.
///
/// Paths of length ≥ 1 are considered; traversal *through* a summary node is
/// handled implicitly (a step into and out of the same summary node composes
/// its possibly-many members).
///
/// The Kleene closure (max-min path semiring over `0 < 1/2 < 1`) decomposes
/// into two boolean closures: a pair is `True` iff connected through `True`
/// edges only, and `≠ False` iff connected through `≠ False` edges. Both run
/// as bit-matrix Warshall passes over whole words.
fn tc_closure(
    s: &Structure,
    table: &PredTable,
    a: Var,
    b: Var,
    body: &Formula,
    asg: &mut Assignment,
) -> TcBits {
    let n = s.node_count();
    let stride = bits::words_for(n);
    let mut step_t = vec![0u64; n * stride];
    let mut step_m = vec![0u64; n * stride];

    // Fast path: the step relation is exactly a binary predicate — its
    // planes *are* the adjacency matrices, word for word.
    let direct = match body {
        Formula::Binary(p, fa, fb)
            if *fa == a && *fb == b && table.arity(*p) == Arity::Binary =>
        {
            Some(table.slot(*p))
        }
        _ => None,
    };
    if let Some(slot) = direct {
        for src in 0..n {
            let (t, h) = s.binary_row(slot, src);
            let row = src * stride;
            step_t[row..row + stride].copy_from_slice(t);
            for w in 0..stride {
                step_m[row + w] = t[w] | h[w];
            }
        }
    } else {
        let (saved_a, saved_b) = (asg.get(a), asg.get(b));
        for u in s.nodes() {
            asg.bind(a, u);
            for v in s.nodes() {
                asg.bind(b, v);
                let val = eval(s, table, body, asg);
                if val != Kleene::False {
                    let w = u.index() * stride + (v.index() >> 6);
                    let bit = 1u64 << (v.index() & 63);
                    step_m[w] |= bit;
                    if val == Kleene::True {
                        step_t[w] |= bit;
                    }
                }
            }
        }
        restore(asg, a, saved_a);
        restore(asg, b, saved_b);
    }

    bool_closure(&mut step_t, n, stride);
    bool_closure(&mut step_m, n, stride);
    TcBits { stride, t: step_t, m: step_m }
}

/// In-place boolean transitive closure (paths of length ≥ 1) of an `n × n`
/// bit adjacency matrix with `stride`-word rows: Warshall's algorithm with
/// the inner union taken a wide-lane block at a time ([`bits::or_into`]).
fn bool_closure(adj: &mut [u64], n: usize, stride: usize) {
    let mut krow = vec![0u64; stride];
    for k in 0..n {
        let (kw, kb) = (k >> 6, (k & 63) as u32);
        krow.copy_from_slice(&adj[k * stride..(k + 1) * stride]);
        for row in adj.chunks_exact_mut(stride).take(n) {
            if (row[kw] >> kb) & 1 != 0 {
                bits::or_into(row, &krow);
            }
        }
    }
}

/// Evaluates a closed formula (no free variables).
///
/// # Panics
///
/// Panics if the formula has free variables.
pub fn eval_closed(s: &Structure, table: &PredTable, formula: &Formula) -> Kleene {
    debug_assert!(
        formula.free_vars().is_empty(),
        "eval_closed on open formula {formula}"
    );
    eval(s, table, formula, &mut Assignment::new())
}

/// Evaluates a formula with exactly one free variable at each node, returning
/// the vector of values indexed by node.
pub fn eval_unary_at_all(
    s: &Structure,
    table: &PredTable,
    formula: &Formula,
    var: Var,
) -> Vec<Kleene> {
    let mut asg = Assignment::new();
    let mut memo = TcMemo::new();
    s.nodes()
        .map(|u| {
            asg.bind(var, u);
            eval_memo(s, table, formula, &mut asg, &mut memo)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{PredFlags, PredId};

    fn setup() -> (PredTable, PredId, PredId, PredId) {
        let mut t = PredTable::new();
        let x = t.add_unary("x", PredFlags::reference_variable());
        let f = t.add_binary("f", PredFlags::reference_field());
        let g = t.add_nullary("g", PredFlags::default());
        (t, x, f, g)
    }

    /// x → u0 → u1 → u2 (chain via f), x(u0)=1.
    fn chain(t: &PredTable, x: PredId, f: PredId) -> Structure {
        let mut s = Structure::new(t);
        let nodes: Vec<NodeId> = (0..3).map(|_| s.add_node(t)).collect();
        s.set_unary(t, x, nodes[0], Kleene::True);
        s.set_binary(t, f, nodes[0], nodes[1], Kleene::True);
        s.set_binary(t, f, nodes[1], nodes[2], Kleene::True);
        s
    }

    #[test]
    fn atoms_and_connectives() {
        let (t, x, f, g) = setup();
        let s = chain(&t, x, f);
        let (v0, v1) = (Var(0), Var(1));
        let mut asg = Assignment::of([(v0, NodeId(0)), (v1, NodeId(1))]);
        assert_eq!(eval(&s, &t, &Formula::unary(x, v0), &mut asg), Kleene::True);
        assert_eq!(eval(&s, &t, &Formula::unary(x, v1), &mut asg), Kleene::False);
        assert_eq!(eval(&s, &t, &Formula::binary(f, v0, v1), &mut asg), Kleene::True);
        assert_eq!(eval(&s, &t, &Formula::nullary(g), &mut asg), Kleene::False);
        assert_eq!(
            eval(&s, &t, &Formula::unary(x, v0).and(Formula::unary(x, v1).not()), &mut asg),
            Kleene::True
        );
    }

    #[test]
    fn equality_on_summary_is_unknown() {
        let (t, x, f, _g) = setup();
        let mut s = chain(&t, x, f);
        let v0 = Var(0);
        let mut asg = Assignment::of([(v0, NodeId(1)), (Var(1), NodeId(1))]);
        assert_eq!(eval(&s, &t, &Formula::eq(v0, Var(1)), &mut asg), Kleene::True);
        s.set_summary(&t, NodeId(1), true);
        assert_eq!(eval(&s, &t, &Formula::eq(v0, Var(1)), &mut asg), Kleene::Unknown);
        let mut asg2 = Assignment::of([(v0, NodeId(0)), (Var(1), NodeId(1))]);
        assert_eq!(eval(&s, &t, &Formula::eq(v0, Var(1)), &mut asg2), Kleene::False);
    }

    #[test]
    fn quantifiers() {
        let (t, x, f, _g) = setup();
        let s = chain(&t, x, f);
        let v = Var(0);
        // ∃v. x(v) = 1; ∀v. x(v) = 0
        assert_eq!(
            eval_closed(&s, &t, &Formula::exists(v, Formula::unary(x, v))),
            Kleene::True
        );
        assert_eq!(
            eval_closed(&s, &t, &Formula::forall(v, Formula::unary(x, v))),
            Kleene::False
        );
    }

    #[test]
    fn quantifier_over_unknown_value() {
        let (t, x, _f, _g) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::Unknown);
        let v = Var(0);
        assert_eq!(
            eval_closed(&s, &t, &Formula::exists(v, Formula::unary(x, v))),
            Kleene::Unknown
        );
        assert_eq!(
            eval_closed(&s, &t, &Formula::forall(v, Formula::unary(x, v))),
            Kleene::Unknown
        );
    }

    #[test]
    fn quantifier_fold_matches_loop_on_all_shapes() {
        // Pin the plane-fold fast paths (∃/∀ over p(v), ¬p(v), f(u,v),
        // f(v,u)) against the generic evaluation loop on a mixed structure.
        let (t, x, f, _g) = setup();
        let mut s = Structure::new(&t);
        let nodes: Vec<NodeId> = (0..5).map(|_| s.add_node(&t)).collect();
        s.set_unary(&t, x, nodes[1], Kleene::Unknown);
        s.set_unary(&t, x, nodes[3], Kleene::True);
        s.set_binary(&t, f, nodes[0], nodes[2], Kleene::Unknown);
        s.set_binary(&t, f, nodes[2], nodes[4], Kleene::True);
        s.set_binary(&t, f, nodes[4], nodes[0], Kleene::Unknown);
        let v = Var(0);
        let u = Var(1);
        let atoms = || -> Vec<Formula> {
            vec![
                Formula::unary(x, v),
                Formula::unary(x, v).not(),
                Formula::binary(f, u, v),
                Formula::binary(f, v, u),
                Formula::binary(f, u, v).not(),
                Formula::binary(f, v, u).not(),
            ]
        };
        for src in &nodes {
            for exists in [true, false] {
                // The loop path is forced by wrapping the atom so it is not
                // a recognizable fast-path shape (¬¬ is semantically id).
                for (fast_body, slow_body) in atoms().into_iter().zip(
                    atoms().into_iter().map(|a| a.not().not()),
                ) {
                    let (fast, slow) = if exists {
                        (Formula::exists(v, fast_body), Formula::exists(v, slow_body))
                    } else {
                        (Formula::forall(v, fast_body), Formula::forall(v, slow_body))
                    };
                    let mut asg = Assignment::of([(u, *src)]);
                    let got = eval(&s, &t, &fast, &mut asg.clone());
                    let want = eval(&s, &t, &slow, &mut asg);
                    assert_eq!(got, want, "src={src} formula={fast}");
                }
            }
        }
    }

    #[test]
    fn transitive_closure_on_chain() {
        let (t, x, f, _g) = setup();
        let s = chain(&t, x, f);
        let (l, r, a, b) = (Var(0), Var(1), Var(2), Var(3));
        let tc = Formula::tc(l, r, a, b, Formula::binary(f, a, b));
        let mut asg = Assignment::of([(l, NodeId(0)), (r, NodeId(2))]);
        assert_eq!(eval(&s, &t, &tc, &mut asg), Kleene::True);
        // No backward path.
        let mut asg_back = Assignment::of([(l, NodeId(2)), (r, NodeId(0))]);
        assert_eq!(eval(&s, &t, &tc, &mut asg_back), Kleene::False);
        // Non-reflexive: u0 to u0 has no cycle.
        let mut asg_self = Assignment::of([(l, NodeId(0)), (r, NodeId(0))]);
        assert_eq!(eval(&s, &t, &tc, &mut asg_self), Kleene::False);
    }

    #[test]
    fn transitive_closure_through_unknown_edge() {
        let (t, _x, f, _g) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let v = s.add_node(&t);
        let w = s.add_node(&t);
        s.set_binary(&t, f, u, v, Kleene::True);
        s.set_binary(&t, f, v, w, Kleene::Unknown);
        let (l, r, a, b) = (Var(0), Var(1), Var(2), Var(3));
        let tc = Formula::tc(l, r, a, b, Formula::binary(f, a, b));
        let mut asg = Assignment::of([(l, u), (r, w)]);
        assert_eq!(eval(&s, &t, &tc, &mut asg), Kleene::Unknown);
    }

    #[test]
    fn tc_cycle_terminates() {
        let (t, _x, f, _g) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let v = s.add_node(&t);
        s.set_binary(&t, f, u, v, Kleene::True);
        s.set_binary(&t, f, v, u, Kleene::True);
        let (l, r, a, b) = (Var(0), Var(1), Var(2), Var(3));
        let tc = Formula::tc(l, r, a, b, Formula::binary(f, a, b));
        let mut asg = Assignment::of([(l, u), (r, u)]);
        assert_eq!(eval(&s, &t, &tc, &mut asg), Kleene::True);
    }

    #[test]
    fn tc_direct_and_general_bodies_agree() {
        // The direct plane-copy fast path (body ≡ f(a,b)) must produce the
        // same closure as the generic eval path over an equivalent body.
        let (t, _x, f, _g) = setup();
        let mut s = Structure::new(&t);
        let nodes: Vec<NodeId> = (0..4).map(|_| s.add_node(&t)).collect();
        s.set_binary(&t, f, nodes[0], nodes[1], Kleene::True);
        s.set_binary(&t, f, nodes[1], nodes[2], Kleene::Unknown);
        s.set_binary(&t, f, nodes[2], nodes[0], Kleene::True);
        s.set_binary(&t, f, nodes[3], nodes[3], Kleene::Unknown);
        let (l, r, a, b) = (Var(0), Var(1), Var(2), Var(3));
        let direct = Formula::tc(l, r, a, b, Formula::binary(f, a, b));
        // ¬¬f(a,b) is semantically identical but not the fast-path shape.
        let general = Formula::tc(l, r, a, b, Formula::binary(f, a, b).not().not());
        for &u in &nodes {
            for &v in &nodes {
                let mut asg = Assignment::of([(l, u), (r, v)]);
                assert_eq!(
                    eval(&s, &t, &direct, &mut asg.clone()),
                    eval(&s, &t, &general, &mut asg),
                    "tc({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn ite_desugaring_behaves() {
        let (t, x, _f, g) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::True);
        s.set_nullary(&t, g, Kleene::True);
        let phi = Formula::ite(Formula::nullary(g), Formula::unary(x, Var(0)), Formula::ff());
        let mut asg = Assignment::of([(Var(0), u)]);
        assert_eq!(eval(&s, &t, &phi, &mut asg), Kleene::True);
    }

    #[test]
    fn eval_unary_at_all_nodes() {
        let (t, x, f, _g) = setup();
        let s = chain(&t, x, f);
        let vals = eval_unary_at_all(&s, &t, &Formula::unary(x, Var(0)), Var(0));
        assert_eq!(vals, vec![Kleene::True, Kleene::False, Kleene::False]);
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn unbound_variable_panics() {
        let (t, x, _f, _g) = setup();
        let mut s = Structure::new(&t);
        s.add_node(&t);
        let _ = eval(&s, &t, &Formula::unary(x, Var(0)), &mut Assignment::new());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "TcMemo reused across a structure mutation")]
    fn tc_memo_stale_entry_guard_fires() {
        let (t, _x, f, _g) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let v = s.add_node(&t);
        s.set_binary(&t, f, u, v, Kleene::True);
        let (l, r, a, b) = (Var(0), Var(1), Var(2), Var(3));
        let tc = Formula::tc(l, r, a, b, Formula::binary(f, a, b));
        let mut memo = TcMemo::new();
        let mut asg = Assignment::of([(l, u), (r, v)]);
        assert_eq!(eval_memo(&s, &t, &tc, &mut asg, &mut memo), Kleene::True);
        // Mutate without memo.clear(): the debug guard must trip.
        s.set_binary(&t, f, u, v, Kleene::False);
        let _ = eval_memo(&s, &t, &tc, &mut asg, &mut memo);
    }
}
