//! Three-valued evaluation of formulas over structures.
//!
//! Evaluation follows the standard 3-valued Kleene semantics of the
//! parametric framework: quantifiers fold their connective over the universe,
//! equality on a summary node yields `1/2`, and transitive closure is computed
//! as a relational fixpoint. The result is a *conservative* approximation: if
//! the structure embeds a concrete state, the concrete truth value is always
//! `⊑`-below the abstract one (soundness — see the embedding tests in
//! [`crate::embed`]).

use crate::formula::{Formula, Var};
use crate::kleene::Kleene;
use crate::pred::PredTable;
use crate::structure::{NodeId, Structure};

/// A partial assignment of individuals to logical variables.
#[derive(Debug, Default, Clone)]
pub struct Assignment {
    slots: Vec<Option<NodeId>>,
}

impl Assignment {
    /// Creates an empty assignment.
    pub fn new() -> Assignment {
        Assignment::default()
    }

    /// Creates an assignment binding each `(var, node)` pair.
    pub fn of(bindings: impl IntoIterator<Item = (Var, NodeId)>) -> Assignment {
        let mut a = Assignment::new();
        for (v, n) in bindings {
            a.bind(v, n);
        }
        a
    }

    /// Binds `v` to `node`, growing the assignment as needed.
    pub fn bind(&mut self, v: Var, node: NodeId) {
        let ix = v.0 as usize;
        if self.slots.len() <= ix {
            self.slots.resize(ix + 1, None);
        }
        self.slots[ix] = Some(node);
    }

    /// Removes the binding of `v`, if any.
    pub fn unbind(&mut self, v: Var) {
        if let Some(slot) = self.slots.get_mut(v.0 as usize) {
            *slot = None;
        }
    }

    /// Current binding of `v`.
    pub fn get(&self, v: Var) -> Option<NodeId> {
        self.slots.get(v.0 as usize).copied().flatten()
    }

    fn lookup(&self, v: Var) -> NodeId {
        self.get(v)
            .unwrap_or_else(|| panic!("unbound variable {v} during evaluation"))
    }
}

/// Memoizes transitive-closure matrices across many [`eval_memo`] calls
/// over the *same* structure.
///
/// Evaluating a `Tc` subformula costs a full O(n³) relational fixpoint, and
/// the sweeps that dominate the analysis (predicate-update transformers,
/// coerce instrumentation rules) re-evaluate the same formula once per node
/// or node pair — recomputing an identical closure every time. A `TcMemo`
/// carried across one sweep caches the matrix per `Tc` body.
///
/// Entries are keyed by the body subformula's address, which identifies it
/// for as long as the formula borrow lives; a matrix is only cached when the
/// body's free variables are all bound by the `Tc` itself, making the
/// closure independent of the outer assignment. Callers must [`clear`] the
/// memo whenever the structure under evaluation changes — the cache is
/// exact, never heuristic, so a stale entry would be a soundness bug.
///
/// [`clear`]: TcMemo::clear
#[derive(Debug, Default)]
pub struct TcMemo {
    /// `(body address, closure)`; `None` marks a body whose closure depends
    /// on outer bindings and must be recomputed per call.
    entries: Vec<(usize, Option<Vec<Kleene>>)>,
}

impl TcMemo {
    /// Creates an empty memo.
    pub fn new() -> TcMemo {
        TcMemo::default()
    }

    /// Drops all cached closures. Must be called when the structure being
    /// evaluated over is mutated.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Evaluates `formula` over `s` under `asg`.
///
/// # Panics
///
/// Panics if a free variable of `formula` is unbound in `asg`, or if a
/// predicate is applied at the wrong arity.
pub fn eval(s: &Structure, table: &PredTable, formula: &Formula, asg: &mut Assignment) -> Kleene {
    eval_memo(s, table, formula, asg, &mut TcMemo::new())
}

/// Like [`eval`], but reuses transitive-closure matrices cached in `memo`.
///
/// Sweeps that evaluate one formula at every node (pair) of a fixed
/// structure should share a single memo across the sweep; see [`TcMemo`]
/// for the invalidation contract.
pub fn eval_memo(
    s: &Structure,
    table: &PredTable,
    formula: &Formula,
    asg: &mut Assignment,
    memo: &mut TcMemo,
) -> Kleene {
    match formula {
        Formula::Const(k) => *k,
        Formula::Nullary(p) => s.nullary(table, *p),
        Formula::Unary(p, v) => s.unary(table, *p, asg.lookup(*v)),
        Formula::Binary(p, a, b) => s.binary(table, *p, asg.lookup(*a), asg.lookup(*b)),
        Formula::Eq(a, b) => {
            let (u, v) = (asg.lookup(*a), asg.lookup(*b));
            if u != v {
                Kleene::False
            } else if s.is_summary(table, u) {
                // A summary node may represent several distinct individuals.
                Kleene::Unknown
            } else {
                Kleene::True
            }
        }
        Formula::Not(f) => !eval_memo(s, table, f, asg, memo),
        Formula::And(l, r) => {
            let lv = eval_memo(s, table, l, asg, memo);
            if lv == Kleene::False {
                return Kleene::False;
            }
            lv & eval_memo(s, table, r, asg, memo)
        }
        Formula::Or(l, r) => {
            let lv = eval_memo(s, table, l, asg, memo);
            if lv == Kleene::True {
                return Kleene::True;
            }
            lv | eval_memo(s, table, r, asg, memo)
        }
        Formula::Exists(v, f) => {
            let saved = asg.get(*v);
            let mut acc = Kleene::False;
            for u in s.nodes() {
                asg.bind(*v, u);
                acc = acc | eval_memo(s, table, f, asg, memo);
                if acc == Kleene::True {
                    break;
                }
            }
            restore(asg, *v, saved);
            acc
        }
        Formula::Forall(v, f) => {
            let saved = asg.get(*v);
            let mut acc = Kleene::True;
            for u in s.nodes() {
                asg.bind(*v, u);
                acc = acc & eval_memo(s, table, f, asg, memo);
                if acc == Kleene::False {
                    break;
                }
            }
            restore(asg, *v, saved);
            acc
        }
        Formula::Tc { lhs, rhs, a, b, body } => {
            let n = s.node_count();
            let (u, v) = (asg.lookup(*lhs), asg.lookup(*rhs));
            let key = &**body as *const Formula as usize;
            if let Some((_, cached)) = memo.entries.iter().find(|(k, _)| *k == key) {
                return match cached {
                    Some(m) => m[u.index() * n + v.index()],
                    // Closure depends on outer bindings: recompute.
                    None => tc_closure(s, table, *a, *b, body, asg)[u.index() * n + v.index()],
                };
            }
            let m = tc_closure(s, table, *a, *b, body, asg);
            let val = m[u.index() * n + v.index()];
            let cacheable = body.free_vars().iter().all(|fv| fv == a || fv == b);
            memo.entries.push((key, cacheable.then_some(m)));
            val
        }
    }
}

fn restore(asg: &mut Assignment, v: Var, saved: Option<NodeId>) {
    match saved {
        Some(node) => asg.bind(v, node),
        None => asg.unbind(v),
    }
}

/// Computes the 3-valued transitive closure matrix of the step relation
/// `body(a, b)` under the current outer assignment.
///
/// Paths of length ≥ 1 are considered; traversal *through* a summary node is
/// handled implicitly (a step into and out of the same summary node composes
/// its possibly-many members).
fn tc_closure(
    s: &Structure,
    table: &PredTable,
    a: Var,
    b: Var,
    body: &Formula,
    asg: &mut Assignment,
) -> Vec<Kleene> {
    let n = s.node_count();
    let mut step = vec![Kleene::False; n * n];
    let (saved_a, saved_b) = (asg.get(a), asg.get(b));
    for u in s.nodes() {
        asg.bind(a, u);
        for v in s.nodes() {
            asg.bind(b, v);
            step[u.index() * n + v.index()] = eval(s, table, body, asg);
        }
    }
    restore(asg, a, saved_a);
    restore(asg, b, saved_b);

    // Kleene-valued Floyd-Warshall style saturation:
    // closure = step ∨ (closure ∘ step), to fixpoint.
    let mut closure = step.clone();
    loop {
        let mut changed = false;
        for i in 0..n {
            for j in 0..n {
                let mut acc = closure[i * n + j];
                if acc == Kleene::True {
                    continue;
                }
                for k in 0..n {
                    acc = acc | (closure[i * n + k] & step[k * n + j]);
                    if acc == Kleene::True {
                        break;
                    }
                }
                if acc != closure[i * n + j] {
                    // Values only grow in the truth order False→Unknown→True,
                    // so the loop terminates.
                    closure[i * n + j] = acc;
                    changed = true;
                }
            }
        }
        if !changed {
            return closure;
        }
    }
}

/// Evaluates a closed formula (no free variables).
///
/// # Panics
///
/// Panics if the formula has free variables.
pub fn eval_closed(s: &Structure, table: &PredTable, formula: &Formula) -> Kleene {
    debug_assert!(
        formula.free_vars().is_empty(),
        "eval_closed on open formula {formula}"
    );
    eval(s, table, formula, &mut Assignment::new())
}

/// Evaluates a formula with exactly one free variable at each node, returning
/// the vector of values indexed by node.
pub fn eval_unary_at_all(
    s: &Structure,
    table: &PredTable,
    formula: &Formula,
    var: Var,
) -> Vec<Kleene> {
    let mut asg = Assignment::new();
    let mut memo = TcMemo::new();
    s.nodes()
        .map(|u| {
            asg.bind(var, u);
            eval_memo(s, table, formula, &mut asg, &mut memo)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{PredFlags, PredId};

    fn setup() -> (PredTable, PredId, PredId, PredId) {
        let mut t = PredTable::new();
        let x = t.add_unary("x", PredFlags::reference_variable());
        let f = t.add_binary("f", PredFlags::reference_field());
        let g = t.add_nullary("g", PredFlags::default());
        (t, x, f, g)
    }

    /// x → u0 → u1 → u2 (chain via f), x(u0)=1.
    fn chain(t: &PredTable, x: PredId, f: PredId) -> Structure {
        let mut s = Structure::new(t);
        let nodes: Vec<NodeId> = (0..3).map(|_| s.add_node(t)).collect();
        s.set_unary(t, x, nodes[0], Kleene::True);
        s.set_binary(t, f, nodes[0], nodes[1], Kleene::True);
        s.set_binary(t, f, nodes[1], nodes[2], Kleene::True);
        s
    }

    #[test]
    fn atoms_and_connectives() {
        let (t, x, f, g) = setup();
        let s = chain(&t, x, f);
        let (v0, v1) = (Var(0), Var(1));
        let mut asg = Assignment::of([(v0, NodeId(0)), (v1, NodeId(1))]);
        assert_eq!(eval(&s, &t, &Formula::unary(x, v0), &mut asg), Kleene::True);
        assert_eq!(eval(&s, &t, &Formula::unary(x, v1), &mut asg), Kleene::False);
        assert_eq!(eval(&s, &t, &Formula::binary(f, v0, v1), &mut asg), Kleene::True);
        assert_eq!(eval(&s, &t, &Formula::nullary(g), &mut asg), Kleene::False);
        assert_eq!(
            eval(&s, &t, &Formula::unary(x, v0).and(Formula::unary(x, v1).not()), &mut asg),
            Kleene::True
        );
    }

    #[test]
    fn equality_on_summary_is_unknown() {
        let (t, x, f, _g) = setup();
        let mut s = chain(&t, x, f);
        let v0 = Var(0);
        let mut asg = Assignment::of([(v0, NodeId(1)), (Var(1), NodeId(1))]);
        assert_eq!(eval(&s, &t, &Formula::eq(v0, Var(1)), &mut asg), Kleene::True);
        s.set_summary(&t, NodeId(1), true);
        assert_eq!(eval(&s, &t, &Formula::eq(v0, Var(1)), &mut asg), Kleene::Unknown);
        let mut asg2 = Assignment::of([(v0, NodeId(0)), (Var(1), NodeId(1))]);
        assert_eq!(eval(&s, &t, &Formula::eq(v0, Var(1)), &mut asg2), Kleene::False);
    }

    #[test]
    fn quantifiers() {
        let (t, x, f, _g) = setup();
        let s = chain(&t, x, f);
        let v = Var(0);
        // ∃v. x(v) = 1; ∀v. x(v) = 0
        assert_eq!(
            eval_closed(&s, &t, &Formula::exists(v, Formula::unary(x, v))),
            Kleene::True
        );
        assert_eq!(
            eval_closed(&s, &t, &Formula::forall(v, Formula::unary(x, v))),
            Kleene::False
        );
    }

    #[test]
    fn quantifier_over_unknown_value() {
        let (t, x, _f, _g) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::Unknown);
        let v = Var(0);
        assert_eq!(
            eval_closed(&s, &t, &Formula::exists(v, Formula::unary(x, v))),
            Kleene::Unknown
        );
        assert_eq!(
            eval_closed(&s, &t, &Formula::forall(v, Formula::unary(x, v))),
            Kleene::Unknown
        );
    }

    #[test]
    fn transitive_closure_on_chain() {
        let (t, x, f, _g) = setup();
        let s = chain(&t, x, f);
        let (l, r, a, b) = (Var(0), Var(1), Var(2), Var(3));
        let tc = Formula::tc(l, r, a, b, Formula::binary(f, a, b));
        let mut asg = Assignment::of([(l, NodeId(0)), (r, NodeId(2))]);
        assert_eq!(eval(&s, &t, &tc, &mut asg), Kleene::True);
        // No backward path.
        let mut asg_back = Assignment::of([(l, NodeId(2)), (r, NodeId(0))]);
        assert_eq!(eval(&s, &t, &tc, &mut asg_back), Kleene::False);
        // Non-reflexive: u0 to u0 has no cycle.
        let mut asg_self = Assignment::of([(l, NodeId(0)), (r, NodeId(0))]);
        assert_eq!(eval(&s, &t, &tc, &mut asg_self), Kleene::False);
    }

    #[test]
    fn transitive_closure_through_unknown_edge() {
        let (t, _x, f, _g) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let v = s.add_node(&t);
        let w = s.add_node(&t);
        s.set_binary(&t, f, u, v, Kleene::True);
        s.set_binary(&t, f, v, w, Kleene::Unknown);
        let (l, r, a, b) = (Var(0), Var(1), Var(2), Var(3));
        let tc = Formula::tc(l, r, a, b, Formula::binary(f, a, b));
        let mut asg = Assignment::of([(l, u), (r, w)]);
        assert_eq!(eval(&s, &t, &tc, &mut asg), Kleene::Unknown);
    }

    #[test]
    fn tc_cycle_terminates() {
        let (t, _x, f, _g) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let v = s.add_node(&t);
        s.set_binary(&t, f, u, v, Kleene::True);
        s.set_binary(&t, f, v, u, Kleene::True);
        let (l, r, a, b) = (Var(0), Var(1), Var(2), Var(3));
        let tc = Formula::tc(l, r, a, b, Formula::binary(f, a, b));
        let mut asg = Assignment::of([(l, u), (r, u)]);
        assert_eq!(eval(&s, &t, &tc, &mut asg), Kleene::True);
    }

    #[test]
    fn ite_desugaring_behaves() {
        let (t, x, _f, g) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::True);
        s.set_nullary(&t, g, Kleene::True);
        let phi = Formula::ite(Formula::nullary(g), Formula::unary(x, Var(0)), Formula::ff());
        let mut asg = Assignment::of([(Var(0), u)]);
        assert_eq!(eval(&s, &t, &phi, &mut asg), Kleene::True);
    }

    #[test]
    fn eval_unary_at_all_nodes() {
        let (t, x, f, _g) = setup();
        let s = chain(&t, x, f);
        let vals = eval_unary_at_all(&s, &t, &Formula::unary(x, Var(0)), Var(0));
        assert_eq!(vals, vec![Kleene::True, Kleene::False, Kleene::False]);
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn unbound_variable_panics() {
        let (t, x, _f, _g) = setup();
        let mut s = Structure::new(&t);
        s.add_node(&t);
        let _ = eval(&s, &t, &Formula::unary(x, Var(0)), &mut Assignment::new());
    }
}
