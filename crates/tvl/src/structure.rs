//! Three-valued logical structures.
//!
//! A [`Structure`] is the pair `⟨U, ι⟩` of paper Definitions 1 and 2: a
//! universe of individuals (each modelling one or more heap objects) plus an
//! interpretation mapping each predicate of a [`PredTable`] to a truth-valued
//! function over individuals. Two-valued (concrete) structures are the special
//! case in which every predicate value is definite and `sm` is `False`
//! everywhere.
//!
//! Structures are plain values: transformers produce new structures rather
//! than mutating shared state, which keeps the abstract-interpretation engine
//! simple and makes structures usable as hash keys via
//! [`crate::canon::canonical_key`].

use std::fmt;

use crate::kleene::Kleene;
use crate::pred::{Arity, PredId, PredTable};

/// Index of an individual in a structure's universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index of the node within its structure.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a node id from a raw index.
    ///
    /// Callers must ensure the index is within the universe of the structure
    /// the id will be used with; out-of-range ids cause panics on access.
    pub fn from_index(ix: usize) -> NodeId {
        NodeId(ix as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A three-valued logical structure.
///
/// # Example
///
/// ```
/// use hetsep_tvl::{PredTable, PredFlags, Structure, Kleene};
/// let mut t = PredTable::new();
/// let x = t.add_unary("x", PredFlags::reference_variable());
/// let f = t.add_binary("f", PredFlags::reference_field());
/// let mut s = Structure::new(&t);
/// let a = s.add_node(&t);
/// let b = s.add_node(&t);
/// s.set_unary(&t, x, a, Kleene::True);
/// s.set_binary(&t, f, a, b, Kleene::True);
/// assert_eq!(s.unary(&t, x, a), Kleene::True);
/// assert_eq!(s.binary(&t, f, a, b), Kleene::True);
/// assert_eq!(s.binary(&t, f, b, a), Kleene::False);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Structure {
    n: u32,
    nullary: Vec<Kleene>,
    /// `unary[slot][node]`
    unary: Vec<Vec<Kleene>>,
    /// `binary[slot][src * n + dst]`
    binary: Vec<Vec<Kleene>>,
}

impl Structure {
    /// Creates a structure with an empty universe; all nullary predicates are
    /// `False`.
    pub fn new(table: &PredTable) -> Structure {
        Structure {
            n: 0,
            nullary: vec![Kleene::False; table.nullary_count()],
            unary: vec![Vec::new(); table.unary_count()],
            binary: vec![Vec::new(); table.binary_count()],
        }
    }

    /// Number of individuals in the universe.
    pub fn node_count(&self) -> usize {
        self.n as usize
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Iterates over all individuals.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n).map(NodeId)
    }

    /// Adds a fresh individual with all predicate values `False` and returns
    /// its id.
    pub fn add_node(&mut self, table: &PredTable) -> NodeId {
        debug_assert_eq!(self.unary.len(), table.unary_count());
        let old = self.n as usize;
        let new = old + 1;
        for col in &mut self.unary {
            col.push(Kleene::False);
        }
        for mat in &mut self.binary {
            let mut grown = vec![Kleene::False; new * new];
            for s in 0..old {
                for d in 0..old {
                    grown[s * new + d] = mat[s * old + d];
                }
            }
            *mat = grown;
        }
        self.n = new as u32;
        NodeId(old as u32)
    }

    #[inline]
    fn check_node(&self, u: NodeId) {
        assert!(u.0 < self.n, "node {u} out of range (n={})", self.n);
    }

    /// A 64-bit fingerprint of the structure's full contents (FNV-1a over
    /// the universe size and every predicate value).
    ///
    /// Equal structures always have equal fingerprints; distinct structures
    /// collide with probability ~2⁻⁶⁴. Callers that use fingerprints as map
    /// keys (e.g. the interner) must verify candidates with full `==`.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        #[inline]
        fn mix(h: u64, byte: u8) -> u64 {
            (h ^ byte as u64).wrapping_mul(PRIME)
        }
        let mut h = OFFSET;
        for b in self.n.to_le_bytes() {
            h = mix(h, b);
        }
        for &v in &self.nullary {
            h = mix(h, v as u8);
        }
        // Column/matrix boundaries are implied by `n` and the (fixed)
        // predicate table, so no separators are needed between slots.
        for col in &self.unary {
            for &v in col {
                h = mix(h, v as u8);
            }
        }
        for mat in &self.binary {
            for &v in mat {
                h = mix(h, v as u8);
            }
        }
        h
    }

    /// Value of a nullary predicate.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not nullary.
    pub fn nullary(&self, table: &PredTable, p: PredId) -> Kleene {
        assert_eq!(table.arity(p), Arity::Nullary);
        self.nullary[table.slot(p)]
    }

    /// Sets a nullary predicate.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not nullary.
    pub fn set_nullary(&mut self, table: &PredTable, p: PredId, v: Kleene) {
        assert_eq!(table.arity(p), Arity::Nullary);
        let slot = table.slot(p);
        self.nullary[slot] = v;
    }

    /// Value of a unary predicate on an individual.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not unary or `u` is out of range.
    pub fn unary(&self, table: &PredTable, p: PredId, u: NodeId) -> Kleene {
        assert_eq!(table.arity(p), Arity::Unary);
        self.check_node(u);
        self.unary[table.slot(p)][u.index()]
    }

    /// Sets a unary predicate on an individual.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not unary or `u` is out of range.
    pub fn set_unary(&mut self, table: &PredTable, p: PredId, u: NodeId, v: Kleene) {
        assert_eq!(table.arity(p), Arity::Unary);
        self.check_node(u);
        let slot = table.slot(p);
        self.unary[slot][u.index()] = v;
    }

    /// Value of a binary predicate on a pair of individuals.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not binary or a node is out of range.
    pub fn binary(&self, table: &PredTable, p: PredId, src: NodeId, dst: NodeId) -> Kleene {
        assert_eq!(table.arity(p), Arity::Binary);
        self.check_node(src);
        self.check_node(dst);
        self.binary[table.slot(p)][src.index() * self.n as usize + dst.index()]
    }

    /// Sets a binary predicate on a pair of individuals.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not binary or a node is out of range.
    pub fn set_binary(&mut self, table: &PredTable, p: PredId, src: NodeId, dst: NodeId, v: Kleene) {
        assert_eq!(table.arity(p), Arity::Binary);
        self.check_node(src);
        self.check_node(dst);
        let n = self.n as usize;
        let slot = table.slot(p);
        self.binary[slot][src.index() * n + dst.index()] = v;
    }

    /// Whether `u` is a summary node (`sm(u) = 1/2`), i.e. may represent more
    /// than one concrete individual.
    pub fn is_summary(&self, table: &PredTable, u: NodeId) -> bool {
        self.unary(table, table.sm(), u) == Kleene::Unknown
    }

    /// Marks or unmarks `u` as a summary node.
    pub fn set_summary(&mut self, table: &PredTable, u: NodeId, summary: bool) {
        let v = if summary { Kleene::Unknown } else { Kleene::False };
        self.set_unary(table, table.sm(), u, v);
    }

    /// Individuals on which unary predicate `p` may hold (value `≠ False`).
    pub fn nodes_where(&self, table: &PredTable, p: PredId) -> Vec<NodeId> {
        self.nodes()
            .filter(|&u| self.unary(table, p, u).maybe_true())
            .collect()
    }

    /// The single individual on which `p` definitely holds, if there is
    /// exactly one candidate and its value is `True`.
    ///
    /// This is the common lookup for reference-variable predicates.
    pub fn definite_node(&self, table: &PredTable, p: PredId) -> Option<NodeId> {
        let cands = self.nodes_where(table, p);
        match cands.as_slice() {
            [u] if self.unary(table, p, *u) == Kleene::True => Some(*u),
            _ => None,
        }
    }

    /// Builds a new structure containing only the individuals for which
    /// `keep` returns `true`, preserving order. Returns the structure and the
    /// mapping from old node ids to new ones.
    pub fn retain_nodes(
        &self,
        table: &PredTable,
        mut keep: impl FnMut(NodeId) -> bool,
    ) -> (Structure, Vec<Option<NodeId>>) {
        let n = self.n as usize;
        let mut map: Vec<Option<NodeId>> = vec![None; n];
        let mut kept: Vec<NodeId> = Vec::new();
        for u in self.nodes() {
            if keep(u) {
                map[u.index()] = Some(NodeId(kept.len() as u32));
                kept.push(u);
            }
        }
        let m = kept.len();
        let mut out = Structure {
            n: m as u32,
            nullary: self.nullary.clone(),
            unary: vec![vec![Kleene::False; m]; self.unary.len()],
            binary: vec![vec![Kleene::False; m * m]; self.binary.len()],
        };
        for (slot, col) in self.unary.iter().enumerate() {
            for (new_ix, old) in kept.iter().enumerate() {
                out.unary[slot][new_ix] = col[old.index()];
            }
        }
        for (slot, mat) in self.binary.iter().enumerate() {
            for (si, s_old) in kept.iter().enumerate() {
                for (di, d_old) in kept.iter().enumerate() {
                    out.binary[slot][si * m + di] = mat[s_old.index() * n + d_old.index()];
                }
            }
        }
        let _ = table;
        (out, map)
    }

    /// Reorders the universe according to `perm`, where `perm[new] = old`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of the universe.
    pub fn permute(&self, perm: &[NodeId]) -> Structure {
        let n = self.n as usize;
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut seen = vec![false; n];
        for u in perm {
            assert!(!seen[u.index()], "not a permutation");
            seen[u.index()] = true;
        }
        let mut out = Structure {
            n: self.n,
            nullary: self.nullary.clone(),
            unary: vec![vec![Kleene::False; n]; self.unary.len()],
            binary: vec![vec![Kleene::False; n * n]; self.binary.len()],
        };
        for (slot, col) in self.unary.iter().enumerate() {
            for (new_ix, old) in perm.iter().enumerate() {
                out.unary[slot][new_ix] = col[old.index()];
            }
        }
        for (slot, mat) in self.binary.iter().enumerate() {
            for (si, s_old) in perm.iter().enumerate() {
                for (di, d_old) in perm.iter().enumerate() {
                    out.binary[slot][si * n + di] = mat[s_old.index() * n + d_old.index()];
                }
            }
        }
        out
    }

    /// Disjoint union of two structures over the same table: the universe is
    /// the concatenation of both universes and nullary predicates are joined
    /// pointwise. Cross edges between the two halves are `False`.
    pub fn union(&self, other: &Structure) -> Structure {
        assert_eq!(self.nullary.len(), other.nullary.len());
        assert_eq!(self.unary.len(), other.unary.len());
        assert_eq!(self.binary.len(), other.binary.len());
        let n1 = self.n as usize;
        let n2 = other.n as usize;
        let n = n1 + n2;
        let mut out = Structure {
            n: n as u32,
            nullary: self
                .nullary
                .iter()
                .zip(&other.nullary)
                .map(|(&a, &b)| a.join(b))
                .collect(),
            unary: vec![vec![Kleene::False; n]; self.unary.len()],
            binary: vec![vec![Kleene::False; n * n]; self.binary.len()],
        };
        for (slot, col) in self.unary.iter().enumerate() {
            out.unary[slot][..n1].copy_from_slice(col);
            out.unary[slot][n1..].copy_from_slice(&other.unary[slot]);
        }
        for (slot, mat) in self.binary.iter().enumerate() {
            for s in 0..n1 {
                for d in 0..n1 {
                    out.binary[slot][s * n + d] = mat[s * n1 + d];
                }
            }
            let omat = &other.binary[slot];
            for s in 0..n2 {
                for d in 0..n2 {
                    out.binary[slot][(n1 + s) * n + (n1 + d)] = omat[s * n2 + d];
                }
            }
        }
        out
    }

    /// Duplicates node `u` (including its unary values and all incident binary
    /// edges, and the self-loop pattern) and returns the new node's id.
    ///
    /// Used by [`crate::focus()`] when bifurcating a summary node.
    pub fn duplicate_node(&mut self, table: &PredTable, u: NodeId) -> NodeId {
        self.check_node(u);
        let v = self.add_node(table);
        let n = self.n as usize;
        for col in &mut self.unary {
            col[v.index()] = col[u.index()];
        }
        for mat in &mut self.binary {
            // Copy row and column, and map the self loop of u to all four
            // pair combinations of {u, v}.
            let self_loop = mat[u.index() * n + u.index()];
            for d in 0..n {
                mat[v.index() * n + d] = mat[u.index() * n + d];
            }
            for s in 0..n {
                mat[s * n + v.index()] = mat[s * n + u.index()];
            }
            mat[v.index() * n + v.index()] = self_loop;
            mat[u.index() * n + v.index()] = self_loop;
            mat[v.index() * n + u.index()] = self_loop;
        }
        v
    }

    /// Returns `true` when every predicate value is definite and no node is a
    /// summary node — i.e. the structure is a concrete (2-valued) state.
    pub fn is_concrete(&self) -> bool {
        self.nullary.iter().all(|v| v.is_definite())
            && self.unary.iter().all(|col| col.iter().all(|v| v.is_definite()))
            && self.binary.iter().all(|m| m.iter().all(|v| v.is_definite()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::PredFlags;

    fn setup() -> (PredTable, PredId, PredId, PredId) {
        let mut t = PredTable::new();
        let x = t.add_unary("x", PredFlags::reference_variable());
        let f = t.add_binary("f", PredFlags::reference_field());
        let b = t.add_nullary("b", PredFlags::default());
        (t, x, f, b)
    }

    #[test]
    fn empty_structure() {
        let (t, ..) = setup();
        let s = Structure::new(&t);
        assert_eq!(s.node_count(), 0);
        assert!(s.is_empty());
        assert!(s.is_concrete());
    }

    #[test]
    fn add_node_defaults_false() {
        let (t, x, f, b) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let v = s.add_node(&t);
        assert_eq!(s.node_count(), 2);
        assert_eq!(s.unary(&t, x, u), Kleene::False);
        assert_eq!(s.binary(&t, f, u, v), Kleene::False);
        assert_eq!(s.nullary(&t, b), Kleene::False);
        assert!(!s.is_summary(&t, u));
    }

    #[test]
    fn binary_matrix_survives_growth() {
        let (t, _x, f, _b) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let v = s.add_node(&t);
        s.set_binary(&t, f, u, v, Kleene::True);
        s.set_binary(&t, f, v, u, Kleene::Unknown);
        let w = s.add_node(&t);
        assert_eq!(s.binary(&t, f, u, v), Kleene::True);
        assert_eq!(s.binary(&t, f, v, u), Kleene::Unknown);
        assert_eq!(s.binary(&t, f, u, w), Kleene::False);
        assert_eq!(s.binary(&t, f, w, v), Kleene::False);
    }

    #[test]
    fn summary_marking() {
        let (t, ..) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        s.set_summary(&t, u, true);
        assert!(s.is_summary(&t, u));
        assert!(!s.is_concrete());
        s.set_summary(&t, u, false);
        assert!(!s.is_summary(&t, u));
    }

    #[test]
    fn definite_node_lookup() {
        let (t, x, ..) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let v = s.add_node(&t);
        assert_eq!(s.definite_node(&t, x), None);
        s.set_unary(&t, x, u, Kleene::True);
        assert_eq!(s.definite_node(&t, x), Some(u));
        s.set_unary(&t, x, v, Kleene::Unknown);
        assert_eq!(s.definite_node(&t, x), None); // ambiguous
    }

    #[test]
    fn retain_nodes_rebuilds_edges() {
        let (t, x, f, _b) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let v = s.add_node(&t);
        let w = s.add_node(&t);
        s.set_unary(&t, x, w, Kleene::True);
        s.set_binary(&t, f, u, w, Kleene::True);
        s.set_binary(&t, f, w, w, Kleene::Unknown);
        let (r, map) = s.retain_nodes(&t, |n| n != v);
        assert_eq!(r.node_count(), 2);
        let nu = map[u.index()].unwrap();
        let nw = map[w.index()].unwrap();
        assert!(map[v.index()].is_none());
        assert_eq!(r.unary(&t, x, nw), Kleene::True);
        assert_eq!(r.binary(&t, f, nu, nw), Kleene::True);
        assert_eq!(r.binary(&t, f, nw, nw), Kleene::Unknown);
    }

    #[test]
    fn permute_roundtrip() {
        let (t, x, f, _b) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let v = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::True);
        s.set_binary(&t, f, u, v, Kleene::Unknown);
        let p = s.permute(&[v, u]);
        assert_eq!(p.unary(&t, x, NodeId(1)), Kleene::True);
        assert_eq!(p.binary(&t, f, NodeId(1), NodeId(0)), Kleene::Unknown);
        let back = p.permute(&[NodeId(1), NodeId(0)]);
        assert_eq!(back, s);
    }

    #[test]
    fn union_is_disjoint() {
        let (t, x, f, b) = setup();
        let mut s1 = Structure::new(&t);
        let u = s1.add_node(&t);
        s1.set_unary(&t, x, u, Kleene::True);
        s1.set_nullary(&t, b, Kleene::True);
        let mut s2 = Structure::new(&t);
        let v = s2.add_node(&t);
        s2.set_binary(&t, f, v, v, Kleene::True);
        let un = s1.union(&s2);
        assert_eq!(un.node_count(), 2);
        assert_eq!(un.unary(&t, x, NodeId(0)), Kleene::True);
        assert_eq!(un.unary(&t, x, NodeId(1)), Kleene::False);
        assert_eq!(un.binary(&t, f, NodeId(1), NodeId(1)), Kleene::True);
        assert_eq!(un.binary(&t, f, NodeId(0), NodeId(1)), Kleene::False);
        // nullary b: True join False = Unknown
        assert_eq!(un.nullary(&t, b), Kleene::Unknown);
    }

    #[test]
    fn duplicate_node_copies_incident_edges() {
        let (t, x, f, _b) = setup();
        let mut s = Structure::new(&t);
        let a = s.add_node(&t);
        let u = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::Unknown);
        s.set_binary(&t, f, a, u, Kleene::Unknown);
        s.set_binary(&t, f, u, u, Kleene::Unknown);
        let v = s.duplicate_node(&t, u);
        assert_eq!(s.unary(&t, x, v), Kleene::Unknown);
        assert_eq!(s.binary(&t, f, a, v), Kleene::Unknown);
        // self loop distributes over all pairs
        assert_eq!(s.binary(&t, f, u, v), Kleene::Unknown);
        assert_eq!(s.binary(&t, f, v, u), Kleene::Unknown);
        assert_eq!(s.binary(&t, f, v, v), Kleene::Unknown);
    }
}
