//! Three-valued logical structures.
//!
//! A [`Structure`] is the pair `⟨U, ι⟩` of paper Definitions 1 and 2: a
//! universe of individuals (each modelling one or more heap objects) plus an
//! interpretation mapping each predicate of a [`PredTable`] to a truth-valued
//! function over individuals. Two-valued (concrete) structures are the special
//! case in which every predicate value is definite and `sm` is `False`
//! everywhere.
//!
//! Structures are plain values: transformers produce new structures rather
//! than mutating shared state, which keeps the abstract-interpretation engine
//! simple and makes structures usable as hash keys via
//! [`crate::canon::canonical_key`].
//!
//! # Data layout
//!
//! Predicate values are stored as two bitplanes per slot (see [`crate::bits`]
//! for the lane encoding): a `true`-plane and a `half`-plane, one bit per
//! node (unary) or node pair (binary), packed into `u64` words. Rows are
//! padded to a whole-word *stride* of `words_for(n)` words:
//!
//! ```text
//! unary_t / unary_h:    [slot * stride + word]             (one row per slot)
//! binary_t / binary_h:  [(slot * n + src) * stride + word] (one row per src)
//! ```
//!
//! Invariants:
//!
//! * `t & h == 0` in every word (a lane is never both `True` and `Unknown`);
//! * every bit past lane `n` of a row is zero (the *padding invariant*), so
//!   the derived `Eq`/`Hash` and the word-folded [`Structure::fingerprint`]
//!   agree with value-wise semantics.
//!
//! All mutation goes through the checked accessors (`set_unary`/`set_binary`)
//! or through kernels that mask with [`crate::bits::word_mask`], so both
//! invariants hold by construction.

use std::fmt;

use crate::bits;
use crate::kleene::Kleene;
use crate::pred::{Arity, PredId, PredTable};

/// Index of an individual in a structure's universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index of the node within its structure.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a node id from a raw index.
    ///
    /// Callers must ensure the index is within the universe of the structure
    /// the id will be used with; out-of-range ids cause panics on access.
    pub fn from_index(ix: usize) -> NodeId {
        NodeId(ix as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A three-valued logical structure.
///
/// # Example
///
/// ```
/// use hetsep_tvl::{PredTable, PredFlags, Structure, Kleene};
/// let mut t = PredTable::new();
/// let x = t.add_unary("x", PredFlags::reference_variable());
/// let f = t.add_binary("f", PredFlags::reference_field());
/// let mut s = Structure::new(&t);
/// let a = s.add_node(&t);
/// let b = s.add_node(&t);
/// s.set_unary(&t, x, a, Kleene::True);
/// s.set_binary(&t, f, a, b, Kleene::True);
/// assert_eq!(s.unary(&t, x, a), Kleene::True);
/// assert_eq!(s.binary(&t, f, a, b), Kleene::True);
/// assert_eq!(s.binary(&t, f, b, a), Kleene::False);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Structure {
    n: u32,
    /// Words per row: `bits::words_for(n)`, cached.
    stride: u32,
    /// Number of unary predicate slots (fixed by the table).
    u_slots: u32,
    /// Number of binary predicate slots (fixed by the table).
    b_slots: u32,
    nullary: Vec<Kleene>,
    /// `true`-plane of unary slots: `[slot * stride + word]`.
    unary_t: Vec<u64>,
    /// `half`-plane of unary slots, same layout as `unary_t`.
    unary_h: Vec<u64>,
    /// `true`-plane of binary slots: `[(slot * n + src) * stride + word]`.
    binary_t: Vec<u64>,
    /// `half`-plane of binary slots, same layout as `binary_t`.
    binary_h: Vec<u64>,
}

/// Re-grids a plane from `(rows_per_slot, old_stride)` geometry to
/// `(new_rows, new_stride)`, in place when capacity allows.
///
/// Rows are moved back-to-front so sources are never clobbered before they
/// are read; fresh rows and newly exposed padding words are zeroed. Performs
/// at most one allocation (the `resize`), and none after `Vec::reserve`.
fn regrow_plane(
    v: &mut Vec<u64>,
    slots: usize,
    old_rows: usize,
    new_rows: usize,
    old_stride: usize,
    new_stride: usize,
) {
    debug_assert!(new_rows >= old_rows && new_stride >= old_stride);
    v.resize(slots * new_rows * new_stride, 0);
    if old_rows == new_rows && old_stride == new_stride {
        return;
    }
    for slot in (0..slots).rev() {
        let base = slot * new_rows * new_stride;
        // Zero fresh rows first: their region sits above every target of this
        // slot's moved rows and below any not-yet-moved row of later slots
        // (already processed) or earlier slots (strictly below `base`).
        for row in old_rows..new_rows {
            let p = base + row * new_stride;
            v[p..p + new_stride].fill(0);
        }
        for row in (0..old_rows).rev() {
            let old_pos = (slot * old_rows + row) * old_stride;
            let new_pos = base + row * new_stride;
            if new_pos != old_pos {
                v.copy_within(old_pos..old_pos + old_stride, new_pos);
            }
            for w in old_stride..new_stride {
                v[new_pos + w] = 0;
            }
        }
    }
}

impl Structure {
    /// Creates a structure with an empty universe; all nullary predicates are
    /// `False`.
    pub fn new(table: &PredTable) -> Structure {
        Structure {
            n: 0,
            stride: 0,
            u_slots: table.unary_count() as u32,
            b_slots: table.binary_count() as u32,
            nullary: vec![Kleene::False; table.nullary_count()],
            unary_t: Vec::new(),
            unary_h: Vec::new(),
            binary_t: Vec::new(),
            binary_h: Vec::new(),
        }
    }

    /// Number of individuals in the universe.
    pub fn node_count(&self) -> usize {
        self.n as usize
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Iterates over all individuals.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n).map(NodeId)
    }

    /// Adds a fresh individual with all predicate values `False` and returns
    /// its id. Equivalent to `add_nodes(table, 1)`; callers growing by more
    /// than one node should prefer the bulk call.
    pub fn add_node(&mut self, table: &PredTable) -> NodeId {
        self.add_nodes(table, 1)
    }

    /// Adds `k` fresh individuals (all predicate values `False`) and returns
    /// the id of the first; the new ids are contiguous. The whole grow is a
    /// single re-grid of each plane — at most one allocation per plane
    /// vector, and none at all after a sufficient [`Structure::reserve_nodes`]
    /// — instead of `k` quadratic re-copies.
    pub fn add_nodes(&mut self, table: &PredTable, k: usize) -> NodeId {
        debug_assert_eq!(self.u_slots as usize, table.unary_count());
        debug_assert_eq!(self.b_slots as usize, table.binary_count());
        let first = NodeId(self.n);
        if k == 0 {
            return first;
        }
        let old_n = self.n as usize;
        let new_n = old_n + k;
        let old_stride = self.stride as usize;
        let new_stride = bits::words_for(new_n);
        let us = self.u_slots as usize;
        let bs = self.b_slots as usize;
        regrow_plane(&mut self.unary_t, us, 1, 1, old_stride, new_stride);
        regrow_plane(&mut self.unary_h, us, 1, 1, old_stride, new_stride);
        regrow_plane(&mut self.binary_t, bs, old_n, new_n, old_stride, new_stride);
        regrow_plane(&mut self.binary_h, bs, old_n, new_n, old_stride, new_stride);
        self.n = new_n as u32;
        self.stride = new_stride as u32;
        first
    }

    /// Reserves capacity so that growing by up to `extra` nodes (via
    /// [`Structure::add_nodes`] or repeated [`Structure::add_node`] /
    /// [`Structure::duplicate_node`] calls) performs no further allocation.
    pub fn reserve_nodes(&mut self, table: &PredTable, extra: usize) {
        debug_assert_eq!(self.u_slots as usize, table.unary_count());
        let new_n = self.n as usize + extra;
        let ns = bits::words_for(new_n);
        let u_len = self.u_slots as usize * ns;
        let b_len = self.b_slots as usize * new_n * ns;
        self.unary_t.reserve(u_len.saturating_sub(self.unary_t.len()));
        self.unary_h.reserve(u_len.saturating_sub(self.unary_h.len()));
        self.binary_t.reserve(b_len.saturating_sub(self.binary_t.len()));
        self.binary_h.reserve(b_len.saturating_sub(self.binary_h.len()));
    }

    #[inline]
    fn check_node(&self, u: NodeId) {
        assert!(u.0 < self.n, "node {u} out of range (n={})", self.n);
    }

    /// Words per plane row (`bits::words_for(n)`).
    #[inline]
    pub(crate) fn stride_words(&self) -> usize {
        self.stride as usize
    }

    /// Both planes of one unary slot, `stride` words each.
    #[inline]
    pub(crate) fn unary_planes(&self, slot: usize) -> (&[u64], &[u64]) {
        let st = self.stride as usize;
        let base = slot * st;
        (&self.unary_t[base..base + st], &self.unary_h[base..base + st])
    }

    /// Mutable planes of one unary slot. Callers must preserve the `t & h`
    /// and padding invariants.
    #[inline]
    pub(crate) fn unary_planes_mut(&mut self, slot: usize) -> (&mut [u64], &mut [u64]) {
        let st = self.stride as usize;
        let base = slot * st;
        (
            &mut self.unary_t[base..base + st],
            &mut self.unary_h[base..base + st],
        )
    }

    /// Both planes of one source row of a binary slot, `stride` words each.
    #[inline]
    pub(crate) fn binary_row(&self, slot: usize, src: usize) -> (&[u64], &[u64]) {
        let st = self.stride as usize;
        let base = (slot * self.n as usize + src) * st;
        (&self.binary_t[base..base + st], &self.binary_h[base..base + st])
    }

    /// Mutable planes of one source row of a binary slot. Callers must
    /// preserve the `t & h` and padding invariants.
    #[inline]
    pub(crate) fn binary_row_mut(&mut self, slot: usize, src: usize) -> (&mut [u64], &mut [u64]) {
        let st = self.stride as usize;
        let base = (slot * self.n as usize + src) * st;
        (
            &mut self.binary_t[base..base + st],
            &mut self.binary_h[base..base + st],
        )
    }

    /// Both planes of a whole binary slot (`n` rows of `stride` words).
    #[inline]
    pub(crate) fn binary_slot_planes(&self, slot: usize) -> (&[u64], &[u64]) {
        let st = self.stride as usize;
        let rows = self.n as usize * st;
        let base = slot * rows;
        (
            &self.binary_t[base..base + rows],
            &self.binary_h[base..base + rows],
        )
    }

    /// Raw unary read by slot index (no arity/table checks).
    #[inline]
    pub(crate) fn get_u(&self, slot: usize, u: usize) -> Kleene {
        let w = slot * self.stride as usize + (u >> 6);
        let b = (u & 63) as u32;
        Kleene::from_bits(
            (self.unary_t[w] >> b) & 1 != 0,
            (self.unary_h[w] >> b) & 1 != 0,
        )
    }

    /// Raw unary write by slot index (no arity/table checks).
    #[inline]
    pub(crate) fn set_u(&mut self, slot: usize, u: usize, v: Kleene) {
        let w = slot * self.stride as usize + (u >> 6);
        let bit = 1u64 << (u & 63);
        let (tb, hb) = v.to_bits();
        if tb {
            self.unary_t[w] |= bit;
        } else {
            self.unary_t[w] &= !bit;
        }
        if hb {
            self.unary_h[w] |= bit;
        } else {
            self.unary_h[w] &= !bit;
        }
    }

    /// Raw binary read by slot index (no arity/table checks).
    #[inline]
    pub(crate) fn get_b(&self, slot: usize, src: usize, dst: usize) -> Kleene {
        let w = (slot * self.n as usize + src) * self.stride as usize + (dst >> 6);
        let b = (dst & 63) as u32;
        Kleene::from_bits(
            (self.binary_t[w] >> b) & 1 != 0,
            (self.binary_h[w] >> b) & 1 != 0,
        )
    }

    /// Raw binary write by slot index (no arity/table checks).
    #[inline]
    pub(crate) fn set_b(&mut self, slot: usize, src: usize, dst: usize, v: Kleene) {
        let w = (slot * self.n as usize + src) * self.stride as usize + (dst >> 6);
        let bit = 1u64 << (dst & 63);
        let (tb, hb) = v.to_bits();
        if tb {
            self.binary_t[w] |= bit;
        } else {
            self.binary_t[w] &= !bit;
        }
        if hb {
            self.binary_h[w] |= bit;
        } else {
            self.binary_h[w] &= !bit;
        }
    }

    /// A 64-bit fingerprint of the structure's full contents (FNV-1a over
    /// the universe size, the nullary values, and every plane word).
    ///
    /// Equal structures always have equal fingerprints; distinct structures
    /// collide with probability ~2⁻⁶⁴. Callers that use fingerprints as map
    /// keys (e.g. the interner) must verify candidates with full `==`.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        #[inline]
        fn mix(h: u64, word: u64) -> u64 {
            (h ^ word).wrapping_mul(PRIME)
        }
        let mut h = OFFSET;
        h = mix(h, self.n as u64);
        for &v in &self.nullary {
            h = mix(h, v as u64);
        }
        // Plane boundaries are implied by `n` and the (fixed) predicate
        // table, so no separators are needed between slots; padding bits are
        // zero by invariant, so equal structures hash equal per-word.
        for &w in &self.unary_t {
            h = mix(h, w);
        }
        for &w in &self.unary_h {
            h = mix(h, w);
        }
        for &w in &self.binary_t {
            h = mix(h, w);
        }
        for &w in &self.binary_h {
            h = mix(h, w);
        }
        h
    }

    /// Serializes the structure to a flat word vector.
    ///
    /// The encoding is `[n, packed nullary…, unary_t…, unary_h…, binary_t…,
    /// binary_h…]`: nullary values are packed two bits per predicate
    /// (32 per word, via [`Kleene::to_bits`]), plane words are copied
    /// verbatim. All lengths are implied by `n` and the predicate table, so
    /// no geometry metadata is stored; because padding bits are zero by
    /// invariant, equal structures encode to equal word vectors and vice
    /// versa — the encoding is a value-exact key for cross-job caches.
    pub fn to_words(&self) -> Vec<u64> {
        let nw = Self::nullary_words(self.nullary.len());
        let mut out = Vec::with_capacity(
            1 + nw
                + self.unary_t.len()
                + self.unary_h.len()
                + self.binary_t.len()
                + self.binary_h.len(),
        );
        out.push(self.n as u64);
        let mut packed = vec![0u64; nw];
        for (ix, &v) in self.nullary.iter().enumerate() {
            let (t, h) = v.to_bits();
            let bits = (t as u64) << 1 | (h as u64);
            packed[ix / 32] |= bits << ((ix % 32) * 2);
        }
        out.extend_from_slice(&packed);
        out.extend_from_slice(&self.unary_t);
        out.extend_from_slice(&self.unary_h);
        out.extend_from_slice(&self.binary_t);
        out.extend_from_slice(&self.binary_h);
        out
    }

    /// Decodes a structure previously encoded by [`Structure::to_words`]
    /// against the *same* predicate table.
    ///
    /// Returns `None` — never a malformed structure — if the words do not
    /// describe a structure for `table`: wrong total length, a nullary value
    /// with both bits set (`11` is not a [`Kleene`]), a word with `t & h !=
    /// 0`, or a non-zero padding bit. Accepting only invariant-clean input
    /// keeps the derived `Eq`/`Hash`/[`Structure::fingerprint`] semantics
    /// intact for decoded structures, which is what makes a persisted cache
    /// safe to trust after collision verification.
    pub fn from_words(table: &PredTable, words: &[u64]) -> Option<Structure> {
        let &n64 = words.first()?;
        if n64 > u32::MAX as u64 {
            return None;
        }
        let n = n64 as usize;
        let stride = if n == 0 { 0 } else { bits::words_for(n) };
        let us = table.unary_count();
        let bs = table.binary_count();
        let nc = table.nullary_count();
        let nw = Self::nullary_words(nc);
        let u_len = us * stride;
        let b_len = bs * n * stride;
        if words.len() != 1 + nw + 2 * u_len + 2 * b_len {
            return None;
        }
        let mut nullary = Vec::with_capacity(nc);
        let packed = &words[1..1 + nw];
        for (ix, &p) in packed.iter().enumerate() {
            let lanes = (nc - ix * 32).min(32);
            // Bits past the last packed nullary must be zero.
            if lanes < 32 && p >> (lanes * 2) != 0 {
                return None;
            }
            for lane in 0..lanes {
                let bits = (p >> (lane * 2)) & 0b11;
                if bits == 0b11 {
                    return None;
                }
                nullary.push(Kleene::from_bits(bits & 0b10 != 0, bits & 0b01 != 0));
            }
        }
        let mut at = 1 + nw;
        let mut take = |len: usize| {
            let s = words[at..at + len].to_vec();
            at += len;
            s
        };
        let unary_t = take(u_len);
        let unary_h = take(u_len);
        let binary_t = take(b_len);
        let binary_h = take(b_len);
        let planes_ok = |t: &[u64], h: &[u64]| {
            t.iter().zip(h).all(|(&tw, &hw)| tw & hw == 0)
                && t.chunks_exact(stride.max(1))
                    .chain(h.chunks_exact(stride.max(1)))
                    .all(|row| {
                        row.iter()
                            .enumerate()
                            .all(|(w, &word)| word & !bits::word_mask(n, w) == 0)
                    })
        };
        if stride > 0 && (!planes_ok(&unary_t, &unary_h) || !planes_ok(&binary_t, &binary_h)) {
            return None;
        }
        Some(Structure {
            n: n as u32,
            stride: stride as u32,
            u_slots: us as u32,
            b_slots: bs as u32,
            nullary,
            unary_t,
            unary_h,
            binary_t,
            binary_h,
        })
    }

    /// Words needed to pack `count` nullary values at two bits each.
    fn nullary_words(count: usize) -> usize {
        count.div_ceil(32)
    }

    /// Value of a nullary predicate.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not nullary.
    pub fn nullary(&self, table: &PredTable, p: PredId) -> Kleene {
        assert_eq!(table.arity(p), Arity::Nullary);
        self.nullary[table.slot(p)]
    }

    /// Sets a nullary predicate.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not nullary.
    pub fn set_nullary(&mut self, table: &PredTable, p: PredId, v: Kleene) {
        assert_eq!(table.arity(p), Arity::Nullary);
        let slot = table.slot(p);
        self.nullary[slot] = v;
    }

    /// Value of a unary predicate on an individual.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not unary or `u` is out of range.
    pub fn unary(&self, table: &PredTable, p: PredId, u: NodeId) -> Kleene {
        assert_eq!(table.arity(p), Arity::Unary);
        self.check_node(u);
        self.get_u(table.slot(p), u.index())
    }

    /// Sets a unary predicate on an individual.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not unary or `u` is out of range.
    pub fn set_unary(&mut self, table: &PredTable, p: PredId, u: NodeId, v: Kleene) {
        assert_eq!(table.arity(p), Arity::Unary);
        self.check_node(u);
        self.set_u(table.slot(p), u.index(), v);
    }

    /// Value of a binary predicate on a pair of individuals.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not binary or a node is out of range.
    pub fn binary(&self, table: &PredTable, p: PredId, src: NodeId, dst: NodeId) -> Kleene {
        assert_eq!(table.arity(p), Arity::Binary);
        self.check_node(src);
        self.check_node(dst);
        self.get_b(table.slot(p), src.index(), dst.index())
    }

    /// Sets a binary predicate on a pair of individuals.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not binary or a node is out of range.
    pub fn set_binary(&mut self, table: &PredTable, p: PredId, src: NodeId, dst: NodeId, v: Kleene) {
        assert_eq!(table.arity(p), Arity::Binary);
        self.check_node(src);
        self.check_node(dst);
        self.set_b(table.slot(p), src.index(), dst.index(), v);
    }

    /// Sets a unary predicate to `v` on **every** individual with one masked
    /// word sweep per plane row.
    pub fn fill_unary(&mut self, table: &PredTable, p: PredId, v: Kleene) {
        assert_eq!(table.arity(p), Arity::Unary);
        let n = self.n as usize;
        let slot = table.slot(p);
        let (tb, hb) = v.to_bits();
        let (t, h) = self.unary_planes_mut(slot);
        for (w, tw) in t.iter_mut().enumerate() {
            *tw = if tb { bits::word_mask(n, w) } else { 0 };
        }
        for (w, hw) in h.iter_mut().enumerate() {
            *hw = if hb { bits::word_mask(n, w) } else { 0 };
        }
    }

    /// Whether `u` is a summary node (`sm(u) = 1/2`), i.e. may represent more
    /// than one concrete individual.
    pub fn is_summary(&self, table: &PredTable, u: NodeId) -> bool {
        self.unary(table, table.sm(), u) == Kleene::Unknown
    }

    /// Marks or unmarks `u` as a summary node.
    pub fn set_summary(&mut self, table: &PredTable, u: NodeId, summary: bool) {
        let v = if summary { Kleene::Unknown } else { Kleene::False };
        self.set_unary(table, table.sm(), u, v);
    }

    /// Individuals on which unary predicate `p` may hold (value `≠ False`),
    /// found by a `trailing_zeros` scan of the or-ed planes.
    pub fn nodes_where(&self, table: &PredTable, p: PredId) -> Vec<NodeId> {
        assert_eq!(table.arity(p), Arity::Unary);
        let (t, h) = self.unary_planes(table.slot(p));
        let mut out = Vec::new();
        for (wi, (&tw, &hw)) in t.iter().zip(h).enumerate() {
            let mut m = tw | hw;
            while m != 0 {
                let b = m.trailing_zeros();
                out.push(NodeId((wi * bits::WORD_BITS) as u32 + b));
                m &= m - 1;
            }
        }
        out
    }

    /// Whether some individual carries both `p` and `q` possibly true
    /// (value `≠ False` for each).
    ///
    /// One AND of the two predicates' maybe-masks (`t | h`) per wide-lane
    /// block ([`bits::overlap_any`]), short-circuiting on the first hit.
    pub fn maybe_overlap(&self, table: &PredTable, p: PredId, q: PredId) -> bool {
        assert_eq!(table.arity(p), Arity::Unary);
        assert_eq!(table.arity(q), Arity::Unary);
        let (tp, hp) = self.unary_planes(table.slot(p));
        let (tq, hq) = self.unary_planes(table.slot(q));
        bits::overlap_any(tp, hp, tq, hq)
    }

    /// The single individual on which `p` definitely holds, if there is
    /// exactly one candidate and its value is `True`.
    ///
    /// This is the common lookup for reference-variable predicates.
    pub fn definite_node(&self, table: &PredTable, p: PredId) -> Option<NodeId> {
        assert_eq!(table.arity(p), Arity::Unary);
        let (t, h) = self.unary_planes(table.slot(p));
        let mut cands = 0u32;
        let mut hit: Option<NodeId> = None;
        for (wi, (&tw, &hw)) in t.iter().zip(h).enumerate() {
            let m = tw | hw;
            cands += m.count_ones();
            if cands > 1 {
                return None;
            }
            if m != 0 && hit.is_none() {
                let b = m.trailing_zeros();
                if (tw >> b) & 1 == 0 {
                    return None; // sole candidate is only Unknown
                }
                hit = Some(NodeId((wi * bits::WORD_BITS) as u32 + b));
            }
        }
        hit
    }

    /// First individual on which `p` is `Unknown`, by index order.
    pub(crate) fn first_unknown_unary(&self, slot: usize) -> Option<NodeId> {
        let (_, h) = self.unary_planes(slot);
        bits::first_set(h).map(NodeId::from_index)
    }

    /// First destination for which `p(src, ·)` is `Unknown`, by index order.
    pub(crate) fn first_unknown_in_row(&self, slot: usize, src: usize) -> Option<NodeId> {
        let (_, h) = self.binary_row(slot, src);
        bits::first_set(h).map(NodeId::from_index)
    }

    /// Builds a new structure containing only the individuals for which
    /// `keep` returns `true`, preserving order. Returns the structure and the
    /// mapping from old node ids to new ones.
    pub fn retain_nodes(
        &self,
        table: &PredTable,
        mut keep: impl FnMut(NodeId) -> bool,
    ) -> (Structure, Vec<Option<NodeId>>) {
        let n = self.n as usize;
        let mut map: Vec<Option<NodeId>> = vec![None; n];
        let mut kept: Vec<NodeId> = Vec::new();
        for u in self.nodes() {
            if keep(u) {
                map[u.index()] = Some(NodeId(kept.len() as u32));
                kept.push(u);
            }
        }
        let mut out = self.empty_resized(kept.len());
        for slot in 0..self.u_slots as usize {
            for (new_ix, old) in kept.iter().enumerate() {
                let v = self.get_u(slot, old.index());
                if v != Kleene::False {
                    out.set_u(slot, new_ix, v);
                }
            }
        }
        for slot in 0..self.b_slots as usize {
            for (si, s_old) in kept.iter().enumerate() {
                for (di, d_old) in kept.iter().enumerate() {
                    let v = self.get_b(slot, s_old.index(), d_old.index());
                    if v != Kleene::False {
                        out.set_b(slot, si, di, v);
                    }
                }
            }
        }
        let _ = table;
        (out, map)
    }

    /// An all-`False` structure with the same table geometry and nullary
    /// values as `self`, over a universe of `m` nodes.
    fn empty_resized(&self, m: usize) -> Structure {
        let st = bits::words_for(m);
        Structure {
            n: m as u32,
            stride: st as u32,
            u_slots: self.u_slots,
            b_slots: self.b_slots,
            nullary: self.nullary.clone(),
            unary_t: vec![0; self.u_slots as usize * st],
            unary_h: vec![0; self.u_slots as usize * st],
            binary_t: vec![0; self.b_slots as usize * m * st],
            binary_h: vec![0; self.b_slots as usize * m * st],
        }
    }

    /// Reorders the universe according to `perm`, where `perm[new] = old`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of the universe.
    pub fn permute(&self, perm: &[NodeId]) -> Structure {
        let n = self.n as usize;
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut seen = vec![false; n];
        for u in perm {
            assert!(!seen[u.index()], "not a permutation");
            seen[u.index()] = true;
        }
        let mut out = self.empty_resized(n);
        for slot in 0..self.u_slots as usize {
            for (new_ix, old) in perm.iter().enumerate() {
                let v = self.get_u(slot, old.index());
                if v != Kleene::False {
                    out.set_u(slot, new_ix, v);
                }
            }
        }
        for slot in 0..self.b_slots as usize {
            for (si, s_old) in perm.iter().enumerate() {
                for (di, d_old) in perm.iter().enumerate() {
                    let v = self.get_b(slot, s_old.index(), d_old.index());
                    if v != Kleene::False {
                        out.set_b(slot, si, di, v);
                    }
                }
            }
        }
        out
    }

    /// Disjoint union of two structures over the same table: the universe is
    /// the concatenation of both universes and nullary predicates are joined
    /// pointwise. Cross edges between the two halves are `False`.
    pub fn union(&self, other: &Structure) -> Structure {
        assert_eq!(self.nullary.len(), other.nullary.len());
        assert_eq!(self.u_slots, other.u_slots);
        assert_eq!(self.b_slots, other.b_slots);
        let n1 = self.n as usize;
        let n2 = other.n as usize;
        let mut out = self.empty_resized(n1 + n2);
        out.nullary = self
            .nullary
            .iter()
            .zip(&other.nullary)
            .map(|(&a, &b)| a.join(b))
            .collect();
        for slot in 0..self.u_slots as usize {
            for u in 0..n1 {
                let v = self.get_u(slot, u);
                if v != Kleene::False {
                    out.set_u(slot, u, v);
                }
            }
            for u in 0..n2 {
                let v = other.get_u(slot, u);
                if v != Kleene::False {
                    out.set_u(slot, n1 + u, v);
                }
            }
        }
        for slot in 0..self.b_slots as usize {
            for s in 0..n1 {
                for d in 0..n1 {
                    let v = self.get_b(slot, s, d);
                    if v != Kleene::False {
                        out.set_b(slot, s, d, v);
                    }
                }
            }
            for s in 0..n2 {
                for d in 0..n2 {
                    let v = other.get_b(slot, s, d);
                    if v != Kleene::False {
                        out.set_b(slot, n1 + s, n1 + d, v);
                    }
                }
            }
        }
        out
    }

    /// Duplicates node `u` (including its unary values and all incident binary
    /// edges, and the self-loop pattern) and returns the new node's id.
    ///
    /// Used by [`crate::focus()`] when bifurcating a summary node.
    pub fn duplicate_node(&mut self, table: &PredTable, u: NodeId) -> NodeId {
        self.check_node(u);
        let v = self.add_nodes(table, 1);
        let n = self.n as usize;
        let st = self.stride as usize;
        let (ui, vi) = (u.index(), v.index());
        for slot in 0..self.u_slots as usize {
            let val = self.get_u(slot, ui);
            if val != Kleene::False {
                self.set_u(slot, vi, val);
            }
        }
        for slot in 0..self.b_slots as usize {
            // Row copy: v's row := u's row, one word move per plane. This
            // also lands u's self loop at (v, u); the column copy below then
            // fills (s, v) := (s, u) for every s — including s ∈ {u, v},
            // which distributes the self loop over all four pairs of {u, v}.
            let u_base = (slot * n + ui) * st;
            let v_base = (slot * n + vi) * st;
            self.binary_t.copy_within(u_base..u_base + st, v_base);
            self.binary_h.copy_within(u_base..u_base + st, v_base);
            for s in 0..n {
                let val = self.get_b(slot, s, ui);
                if val != Kleene::False {
                    self.set_b(slot, s, vi, val);
                }
            }
        }
        v
    }

    /// Returns `true` when every predicate value is definite and no node is a
    /// summary node — i.e. the structure is a concrete (2-valued) state.
    ///
    /// With two-plane storage this is one `half`-plane emptiness scan: a
    /// structure is concrete iff no `h` bit is set anywhere.
    pub fn is_concrete(&self) -> bool {
        self.nullary.iter().all(|v| v.is_definite())
            && !bits::any_set(&self.unary_h)
            && !bits::any_set(&self.binary_h)
    }

    /// Checks the `t & h` and padding invariants on every plane row
    /// (debug builds only); used by tests and kernel entry points.
    #[cfg(debug_assertions)]
    pub(crate) fn debug_check_invariants(&self) {
        let n = self.n as usize;
        let st = self.stride as usize;
        let check_row = |t: &[u64], h: &[u64]| {
            for w in 0..st {
                debug_assert_eq!(t[w] & h[w], 0, "t/h invariant violated");
                let mask = bits::word_mask(n, w);
                debug_assert_eq!(t[w] & !mask, 0, "padding bits set in t plane");
                debug_assert_eq!(h[w] & !mask, 0, "padding bits set in h plane");
            }
        };
        for slot in 0..self.u_slots as usize {
            let (t, h) = self.unary_planes(slot);
            check_row(t, h);
        }
        for slot in 0..self.b_slots as usize {
            for src in 0..n {
                let (t, h) = self.binary_row(slot, src);
                check_row(t, h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::PredFlags;

    fn setup() -> (PredTable, PredId, PredId, PredId) {
        let mut t = PredTable::new();
        let x = t.add_unary("x", PredFlags::reference_variable());
        let f = t.add_binary("f", PredFlags::reference_field());
        let b = t.add_nullary("b", PredFlags::default());
        (t, x, f, b)
    }

    #[test]
    fn empty_structure() {
        let (t, ..) = setup();
        let s = Structure::new(&t);
        assert_eq!(s.node_count(), 0);
        assert!(s.is_empty());
        assert!(s.is_concrete());
    }

    #[test]
    fn add_node_defaults_false() {
        let (t, x, f, b) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let v = s.add_node(&t);
        assert_eq!(s.node_count(), 2);
        assert_eq!(s.unary(&t, x, u), Kleene::False);
        assert_eq!(s.binary(&t, f, u, v), Kleene::False);
        assert_eq!(s.nullary(&t, b), Kleene::False);
        assert!(!s.is_summary(&t, u));
    }

    #[test]
    fn binary_matrix_survives_growth() {
        let (t, _x, f, _b) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let v = s.add_node(&t);
        s.set_binary(&t, f, u, v, Kleene::True);
        s.set_binary(&t, f, v, u, Kleene::Unknown);
        let w = s.add_node(&t);
        assert_eq!(s.binary(&t, f, u, v), Kleene::True);
        assert_eq!(s.binary(&t, f, v, u), Kleene::Unknown);
        assert_eq!(s.binary(&t, f, u, w), Kleene::False);
        assert_eq!(s.binary(&t, f, w, v), Kleene::False);
    }

    #[test]
    fn bulk_add_nodes_matches_repeated_add_node() {
        let (t, x, f, _b) = setup();
        let mut bulk = Structure::new(&t);
        let u = bulk.add_node(&t);
        bulk.set_unary(&t, x, u, Kleene::True);
        bulk.set_binary(&t, f, u, u, Kleene::Unknown);
        let mut single = bulk.clone();
        let first = bulk.add_nodes(&t, 70); // crosses the one-word boundary
        for _ in 0..70 {
            single.add_node(&t);
        }
        assert_eq!(first, NodeId(1));
        assert_eq!(bulk, single);
        assert_eq!(bulk.node_count(), 71);
        assert_eq!(bulk.unary(&t, x, u), Kleene::True);
        assert_eq!(bulk.binary(&t, f, u, u), Kleene::Unknown);
        assert_eq!(bulk.binary(&t, f, first, u), Kleene::False);
        #[cfg(debug_assertions)]
        bulk.debug_check_invariants();
    }

    #[test]
    fn add_nodes_zero_is_noop() {
        let (t, ..) = setup();
        let mut s = Structure::new(&t);
        s.add_node(&t);
        let before = s.clone();
        let first = s.add_nodes(&t, 0);
        assert_eq!(first, NodeId(1));
        assert_eq!(s, before);
    }

    #[test]
    fn reserve_then_grow() {
        let (t, x, f, _b) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::Unknown);
        s.set_binary(&t, f, u, u, Kleene::True);
        s.reserve_nodes(&t, 200);
        let first = s.add_nodes(&t, 200);
        assert_eq!(s.node_count(), 201);
        assert_eq!(s.unary(&t, x, u), Kleene::Unknown);
        assert_eq!(s.binary(&t, f, u, u), Kleene::True);
        assert_eq!(s.binary(&t, f, first, first), Kleene::False);
    }

    #[test]
    fn fill_unary_sets_every_node() {
        let (t, x, ..) = setup();
        let mut s = Structure::new(&t);
        s.add_nodes(&t, 67);
        s.fill_unary(&t, x, Kleene::Unknown);
        for u in s.nodes() {
            assert_eq!(s.unary(&t, x, u), Kleene::Unknown);
        }
        s.fill_unary(&t, x, Kleene::False);
        for u in s.nodes() {
            assert_eq!(s.unary(&t, x, u), Kleene::False);
        }
        #[cfg(debug_assertions)]
        s.debug_check_invariants();
    }

    #[test]
    fn summary_marking() {
        let (t, ..) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        s.set_summary(&t, u, true);
        assert!(s.is_summary(&t, u));
        assert!(!s.is_concrete());
        s.set_summary(&t, u, false);
        assert!(!s.is_summary(&t, u));
    }

    #[test]
    fn definite_node_lookup() {
        let (t, x, ..) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let v = s.add_node(&t);
        assert_eq!(s.definite_node(&t, x), None);
        s.set_unary(&t, x, u, Kleene::True);
        assert_eq!(s.definite_node(&t, x), Some(u));
        s.set_unary(&t, x, v, Kleene::Unknown);
        assert_eq!(s.definite_node(&t, x), None); // ambiguous
    }

    #[test]
    fn definite_node_rejects_lone_unknown() {
        let (t, x, ..) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::Unknown);
        assert_eq!(s.definite_node(&t, x), None);
    }

    #[test]
    fn retain_nodes_rebuilds_edges() {
        let (t, x, f, _b) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let v = s.add_node(&t);
        let w = s.add_node(&t);
        s.set_unary(&t, x, w, Kleene::True);
        s.set_binary(&t, f, u, w, Kleene::True);
        s.set_binary(&t, f, w, w, Kleene::Unknown);
        let (r, map) = s.retain_nodes(&t, |n| n != v);
        assert_eq!(r.node_count(), 2);
        let nu = map[u.index()].unwrap();
        let nw = map[w.index()].unwrap();
        assert!(map[v.index()].is_none());
        assert_eq!(r.unary(&t, x, nw), Kleene::True);
        assert_eq!(r.binary(&t, f, nu, nw), Kleene::True);
        assert_eq!(r.binary(&t, f, nw, nw), Kleene::Unknown);
    }

    #[test]
    fn permute_roundtrip() {
        let (t, x, f, _b) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let v = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::True);
        s.set_binary(&t, f, u, v, Kleene::Unknown);
        let p = s.permute(&[v, u]);
        assert_eq!(p.unary(&t, x, NodeId(1)), Kleene::True);
        assert_eq!(p.binary(&t, f, NodeId(1), NodeId(0)), Kleene::Unknown);
        let back = p.permute(&[NodeId(1), NodeId(0)]);
        assert_eq!(back, s);
    }

    #[test]
    fn union_is_disjoint() {
        let (t, x, f, b) = setup();
        let mut s1 = Structure::new(&t);
        let u = s1.add_node(&t);
        s1.set_unary(&t, x, u, Kleene::True);
        s1.set_nullary(&t, b, Kleene::True);
        let mut s2 = Structure::new(&t);
        let v = s2.add_node(&t);
        s2.set_binary(&t, f, v, v, Kleene::True);
        let un = s1.union(&s2);
        assert_eq!(un.node_count(), 2);
        assert_eq!(un.unary(&t, x, NodeId(0)), Kleene::True);
        assert_eq!(un.unary(&t, x, NodeId(1)), Kleene::False);
        assert_eq!(un.binary(&t, f, NodeId(1), NodeId(1)), Kleene::True);
        assert_eq!(un.binary(&t, f, NodeId(0), NodeId(1)), Kleene::False);
        // nullary b: True join False = Unknown
        assert_eq!(un.nullary(&t, b), Kleene::Unknown);
    }

    #[test]
    fn duplicate_node_copies_incident_edges() {
        let (t, x, f, _b) = setup();
        let mut s = Structure::new(&t);
        let a = s.add_node(&t);
        let u = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::Unknown);
        s.set_binary(&t, f, a, u, Kleene::Unknown);
        s.set_binary(&t, f, u, u, Kleene::Unknown);
        let v = s.duplicate_node(&t, u);
        assert_eq!(s.unary(&t, x, v), Kleene::Unknown);
        assert_eq!(s.binary(&t, f, a, v), Kleene::Unknown);
        // self loop distributes over all pairs
        assert_eq!(s.binary(&t, f, u, v), Kleene::Unknown);
        assert_eq!(s.binary(&t, f, v, u), Kleene::Unknown);
        assert_eq!(s.binary(&t, f, v, v), Kleene::Unknown);
    }

    #[test]
    fn fingerprint_distinguishes_and_agrees() {
        let (t, x, f, _b) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let v = s.add_node(&t);
        s.set_binary(&t, f, u, v, Kleene::True);
        let clone = s.clone();
        assert_eq!(s.fingerprint(), clone.fingerprint());
        let mut other = s.clone();
        other.set_unary(&t, x, u, Kleene::Unknown);
        assert_ne!(s.fingerprint(), other.fingerprint());
        assert_ne!(s, other);
    }

    #[test]
    fn word_roundtrip_is_exact() {
        let (t, x, f, b) = setup();
        // Empty universe, nodes spanning multiple words, and mixed values.
        for n in [0usize, 1, 3, 64, 65, 130] {
            let mut s = Structure::new(&t);
            s.add_nodes(&t, n);
            s.set_nullary(&t, b, Kleene::Unknown);
            for ix in (0..n).step_by(3) {
                s.set_unary(&t, x, NodeId::from_index(ix), Kleene::Unknown);
                let dst = NodeId::from_index((ix * 7 + 1) % n.max(1));
                s.set_binary(&t, f, NodeId::from_index(ix), dst, Kleene::True);
            }
            let words = s.to_words();
            let back = Structure::from_words(&t, &words).expect("decodes");
            assert_eq!(s, back, "n={n}");
            assert_eq!(s.fingerprint(), back.fingerprint(), "n={n}");
        }
    }

    #[test]
    fn from_words_rejects_malformed_input() {
        let (t, x, _f, _b) = setup();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::True);
        let words = s.to_words();
        // Truncated and over-long encodings.
        assert!(Structure::from_words(&t, &words[..words.len() - 1]).is_none());
        let mut long = words.clone();
        long.push(0);
        assert!(Structure::from_words(&t, &long).is_none());
        assert!(Structure::from_words(&t, &[]).is_none());
        // An `11` nullary bit pair is not a Kleene value.
        let mut bad_nullary = words.clone();
        bad_nullary[1] |= 0b11;
        assert!(Structure::from_words(&t, &bad_nullary).is_none());
        // Violating `t & h == 0` on a unary plane word.
        let mut bad_plane = words.clone();
        let u_base = 2; // [n, nullary, unary_t...]
        bad_plane[u_base] = 1;
        bad_plane[u_base + t.unary_count()] = 1;
        assert!(Structure::from_words(&t, &bad_plane).is_none());
        // A padding bit past lane `n`.
        let mut bad_pad = words;
        bad_pad[u_base] |= 1 << 1;
        assert!(Structure::from_words(&t, &bad_pad).is_none());
    }
}
