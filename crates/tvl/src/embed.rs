//! Embedding and isomorphism checks.
//!
//! A 3-valued structure `A` *embeds* a structure `C` when there is a
//! surjection `h` from `C`'s universe onto `A`'s universe such that every
//! predicate value in `C` is `⊑`-below the corresponding value in `A`, and
//! every node with more than one preimage is a summary node. Embedding is the
//! soundness relation of the parametric framework: the abstract transformers
//! in this crate are tested (see the property tests) to preserve it.
//!
//! The search here is brute force and intended for testing and for the small
//! universes that arise under heterogeneous abstraction — it is exponential in
//! the universe size.

use crate::bits;
use crate::kleene::Kleene;
use crate::pred::{Arity, PredTable};
use crate::structure::{NodeId, Structure};

/// Checks whether `abst` embeds `conc` via *some* surjective mapping.
///
/// Returns the witness mapping (indexed by `conc` node) if one exists.
pub fn find_embedding(
    conc: &Structure,
    abst: &Structure,
    table: &PredTable,
) -> Option<Vec<NodeId>> {
    let nc = conc.node_count();
    let na = abst.node_count();
    if na > nc {
        return None;
    }
    if nc == 0 {
        return check_nullary(conc, abst, table).then(Vec::new);
    }
    let mut map: Vec<NodeId> = vec![NodeId::from_index(0); nc];
    if !check_nullary(conc, abst, table) {
        return None;
    }
    if search(conc, abst, table, &mut map, 0) {
        Some(map)
    } else {
        None
    }
}

/// Whether `abst` embeds `conc` (see [`find_embedding`]).
pub fn embeds(conc: &Structure, abst: &Structure, table: &PredTable) -> bool {
    find_embedding(conc, abst, table).is_some()
}

/// Whether the two structures are isomorphic (mutual embedding by a
/// bijection with equal predicate values).
pub fn is_isomorphic(a: &Structure, b: &Structure, table: &PredTable) -> bool {
    if a.node_count() != b.node_count() {
        return false;
    }
    // An isomorphism is an embedding in both directions with equal counts;
    // since values must be ⊑ in both directions they are equal.
    embeds(a, b, table) && embeds(b, a, table)
}

fn check_nullary(conc: &Structure, abst: &Structure, table: &PredTable) -> bool {
    table
        .iter_arity(Arity::Nullary)
        .all(|p| conc.nullary(table, p).le_info(abst.nullary(table, p)))
}

fn search(
    conc: &Structure,
    abst: &Structure,
    table: &PredTable,
    map: &mut Vec<NodeId>,
    next: usize,
) -> bool {
    let nc = conc.node_count();
    if next == nc {
        return surjective(abst, map) && consistent(conc, abst, table, map);
    }
    for target in abst.nodes() {
        map[next] = target;
        if unary_compatible(conc, abst, table, NodeId::from_index(next), target)
            && search(conc, abst, table, map, next + 1)
        {
            return true;
        }
    }
    false
}

fn surjective(abst: &Structure, map: &[NodeId]) -> bool {
    let mut hit = vec![false; abst.node_count()];
    for m in map {
        hit[m.index()] = true;
    }
    hit.into_iter().all(|h| h)
}

fn unary_compatible(
    conc: &Structure,
    abst: &Structure,
    table: &PredTable,
    cu: NodeId,
    au: NodeId,
) -> bool {
    table
        .iter_arity(Arity::Unary)
        .all(|p| conc.unary(table, p, cu).le_info(abst.unary(table, p, au)))
}

fn consistent(conc: &Structure, abst: &Structure, table: &PredTable, map: &[NodeId]) -> bool {
    // Summary-node condition: a non-summary abstract node has exactly one preimage.
    let mut count = vec![0usize; abst.node_count()];
    for m in map {
        count[m.index()] += 1;
    }
    for u in abst.nodes() {
        if count[u.index()] > 1 && !abst.is_summary(table, u) {
            return false;
        }
    }
    // sm itself must also satisfy ⊑ pointwise, which unary_compatible checked.
    // Binary predicates:
    for p in table.iter_arity(Arity::Binary) {
        for s in conc.nodes() {
            for d in conc.nodes() {
                let cv = conc.binary(table, p, s, d);
                let av = abst.binary(table, p, map[s.index()], map[d.index()]);
                if !cv.le_info(av) {
                    return false;
                }
            }
        }
    }
    true
}

/// Checks that every predicate value of `a` is `⊑` the corresponding value of
/// `b` under the *identity* mapping (requires equal universes). This is the
/// degenerate embedding used to compare two views of the same universe.
///
/// Word-parallel: both structures share the same plane geometry, so the
/// pointwise `⊑` test is [`bits::le_info_any`] over corresponding plane
/// slabs — a wide-lane block of individuals (or pairs) per comparison,
/// short-circuiting on the first block with any violating lane.
pub fn le_pointwise(a: &Structure, b: &Structure, table: &PredTable) -> bool {
    let n = a.node_count();
    if n != b.node_count() {
        return false;
    }
    let nullary_ok = table
        .iter_arity(Arity::Nullary)
        .all(|p| a.nullary(table, p).le_info(b.nullary(table, p)));
    if !nullary_ok {
        return false;
    }
    let stride = a.stride_words();
    let plane_le = |ta: &[u64], ha: &[u64], tb: &[u64], hb: &[u64]| {
        !bits::le_info_any(ta, ha, tb, hb, n, stride)
    };
    let unary_ok = table.iter_arity(Arity::Unary).all(|p| {
        let slot = table.slot(p);
        let (ta, ha) = a.unary_planes(slot);
        let (tb, hb) = b.unary_planes(slot);
        plane_le(ta, ha, tb, hb)
    });
    let binary_ok = table.iter_arity(Arity::Binary).all(|p| {
        let slot = table.slot(p);
        let (ta, ha) = a.binary_slot_planes(slot);
        let (tb, hb) = b.binary_slot_planes(slot);
        plane_le(ta, ha, tb, hb)
    });
    unary_ok && binary_ok
}

/// Convenience for tests: `True`/`False`/`Unknown` grid of a binary predicate.
pub fn binary_grid(s: &Structure, table: &PredTable, p: crate::pred::PredId) -> Vec<Vec<Kleene>> {
    s.nodes()
        .map(|src| s.nodes().map(|dst| s.binary(table, p, src, dst)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::blur;
    use crate::pred::{PredFlags, PredId};

    fn table() -> (PredTable, PredId, PredId) {
        let mut t = PredTable::new();
        let x = t.add_unary("x", PredFlags::reference_variable());
        let f = t.add_binary("f", PredFlags::reference_field());
        (t, x, f)
    }

    fn chain(t: &PredTable, x: PredId, f: PredId, len: usize) -> Structure {
        let mut s = Structure::new(t);
        let nodes: Vec<NodeId> = (0..len).map(|_| s.add_node(t)).collect();
        if let Some(&first) = nodes.first() {
            s.set_unary(t, x, first, Kleene::True);
        }
        for w in nodes.windows(2) {
            s.set_binary(t, f, w[0], w[1], Kleene::True);
        }
        s
    }

    #[test]
    fn blur_embeds_original() {
        let (t, x, f) = table();
        for len in 1..5 {
            let s = chain(&t, x, f, len);
            let b = blur(&s, &t);
            assert!(
                embeds(&s, &b, &t),
                "blur of a {len}-chain must embed the original"
            );
        }
    }

    #[test]
    fn embedding_is_reflexive() {
        let (t, x, f) = table();
        let s = chain(&t, x, f, 3);
        assert!(embeds(&s, &s, &t));
        assert!(is_isomorphic(&s, &s, &t));
    }

    #[test]
    fn concrete_does_not_embed_into_incompatible() {
        let (t, x, f) = table();
        let s = chain(&t, x, f, 2);
        let mut other = chain(&t, x, f, 2);
        // Remove the edge: s has f(u0,u1)=1 but other has 0 — no embedding.
        other.set_binary(&t, f, NodeId::from_index(0), NodeId::from_index(1), Kleene::False);
        assert!(!embeds(&s, &other, &t));
        // The reverse direction also fails (0 ⋢ 1? 0 ⊑ 1 is false: le_info
        // requires equal or target Unknown).
        assert!(!embeds(&other, &s, &t));
    }

    #[test]
    fn summary_node_required_for_many_to_one() {
        let (t, x, f) = table();
        let s = chain(&t, x, f, 3);
        // Abstract: x-node plus one NON-summary node cannot absorb two nodes.
        let mut bad = Structure::new(&t);
        let a = bad.add_node(&t);
        let b = bad.add_node(&t);
        bad.set_unary(&t, x, a, Kleene::True);
        bad.set_binary(&t, f, a, b, Kleene::Unknown);
        bad.set_binary(&t, f, b, b, Kleene::Unknown);
        assert!(!embeds(&s, &bad, &t), "needs sm=1/2 on the absorbing node");
        bad.set_summary(&t, b, true);
        assert!(embeds(&s, &bad, &t));
    }

    #[test]
    fn surjectivity_enforced() {
        let (t, x, f) = table();
        let small = chain(&t, x, f, 1);
        let big = chain(&t, x, f, 2);
        assert!(!embeds(&small, &big, &t), "no surjection from 1 onto 2 nodes");
    }

    #[test]
    fn le_pointwise_basic() {
        let (t, x, f) = table();
        let s = chain(&t, x, f, 2);
        let mut loosened = s.clone();
        loosened.set_binary(&t, f, NodeId::from_index(0), NodeId::from_index(1), Kleene::Unknown);
        assert!(le_pointwise(&s, &loosened, &t));
        assert!(!le_pointwise(&loosened, &s, &t));
    }

    #[test]
    fn isomorphism_detects_renaming() {
        let (t, x, f) = table();
        let s1 = chain(&t, x, f, 3);
        let s2 = s1.permute(&[NodeId::from_index(2), NodeId::from_index(0), NodeId::from_index(1)]);
        assert!(is_isomorphic(&s1, &s2, &t));
    }
}
