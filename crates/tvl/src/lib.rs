//! # hetsep-tvl
//!
//! A three-valued-logic engine in the style of TVLA (Lev-Ami & Sagiv) and the
//! parametric shape-analysis framework of Sagiv, Reps & Wilhelm, as used by
//! Yahav & Ramalingam, *"Verifying Safety Properties using Separation and
//! Heterogeneous Abstractions"* (PLDI 2004).
//!
//! The crate provides:
//!
//! * [`Kleene`] — three-valued truth values with Kleene semantics,
//! * [`PredTable`] / [`PredId`] — a registry of nullary/unary/binary predicates,
//! * [`Structure`] — logical structures whose individuals model heap objects,
//! * [`Formula`] — first-order formulas with transitive closure,
//! * [`canon`] — canonical abstraction (individual merging / "blur"),
//! * [`mod@focus`] — materialization of definite values out of summary nodes,
//! * [`mod@coerce`] — constraint-driven sharpening and infeasibility pruning,
//! * [`merge`] — structure-merging policies, including the paper's
//!   *heterogeneous* merge keyed on the relevant substructure,
//! * [`action`] — predicate-update transformers (the operational semantics of
//!   a first-order transition system),
//! * [`display`] — text/DOT rendering of structures (paper Figures 2, 5, 7),
//! * [`telemetry`] — the observability layer: per-phase timings and counters
//!   ([`RunMetrics`]), typed [`Event`]s, and the [`EventSink`] contract with
//!   [`NullSink`] / [`MetricsSink`] / [`TraceWriter`] implementations.
//!
//! # Example
//!
//! ```
//! use hetsep_tvl::{PredTable, Structure, Kleene, Formula, Var};
//!
//! let mut table = PredTable::new();
//! let x = table.add_unary("x", Default::default());
//! let mut s = Structure::new(&table);
//! let n = s.add_node(&table);
//! s.set_unary(&table, x, n, Kleene::True);
//! let v = Var(0);
//! let f = Formula::exists(v, Formula::unary(x, v));
//! assert_eq!(hetsep_tvl::eval_closed(&s, &table, &f), Kleene::True);
//! ```

pub mod action;
pub mod bits;
pub mod canon;
pub mod coerce;
pub mod display;
pub mod embed;
pub mod eval;
pub mod focus;
pub mod formula;
pub mod intern;
pub mod kleene;
pub mod merge;
pub mod pred;
pub mod structure;
pub mod telemetry;

pub use action::{
    apply, apply_planned, Action, ApplyOutcome, Check, CheckViolation, NewNodeSpec, PredUpdate,
};
pub use canon::{blur, canonical_key, CanonicalKey};
pub use coerce::{coerce, coerce_with, CoerceOutcome, CoercePlan};
pub use eval::{eval, eval_closed, eval_memo, Assignment, TcMemo};
pub use focus::{focus, focus_all, FocusSpec, DEFAULT_FOCUS_LIMIT};
pub use formula::{Formula, Var};
pub use intern::{PoolId, StructureId, StructureInterner, WordPool};
pub use kleene::Kleene;
pub use merge::{merge_all, MergePolicy};
pub use pred::{Arity, PredFlags, PredId, PredTable};
pub use structure::{NodeId, Structure};
pub use telemetry::{
    Counter, Counters, Event, EventSink, MetricsSink, NullSink, Phase, PhaseStats, PhaseTimings,
    RunMetrics, TraceWriter,
};
