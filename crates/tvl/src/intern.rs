//! Hash-consing of canonically-ordered structures.
//!
//! The abstract-interpretation engine keeps every canonical structure it has
//! seen in per-location sets and merge maps. Cloning whole [`Structure`]
//! values into each of those containers — and hashing the full predicate
//! interpretation on every map probe — dominates analysis time on the larger
//! benchmarks. A [`StructureInterner`] stores each distinct structure once in
//! an arena and hands out a compact [`StructureId`]; equal structures always
//! receive the same id, so id equality is structure equality and containers
//! can key on a 4-byte copyable value.
//!
//! Lookup is keyed by the structure's 64-bit [`Structure::fingerprint`].
//! Fingerprints can collide, so each fingerprint bucket holds a list of
//! candidate ids and interning verifies candidates with full `==` before
//! reusing an id — a collision costs one structure comparison, never a wrong
//! answer.
//!
//! With the bit-packed two-plane [`Structure`] layout both halves of a probe
//! are word-parallel: the fingerprint mixes one `u64` plane word (64 truth
//! values) per FNV round, and the verifying `==` is a derived slice compare
//! over the plane vectors — the stride-padding invariant (bits past the
//! universe size are always zero) is what makes both value-exact.

use std::collections::HashMap;

use crate::structure::Structure;

/// Arena index of an interned structure. Equal ids ⇔ equal structures
/// (within one interner).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StructureId(u32);

impl StructureId {
    /// Raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A hash-consing arena for [`Structure`]s.
///
/// # Example
///
/// ```
/// use hetsep_tvl::{PredTable, Structure};
/// use hetsep_tvl::intern::StructureInterner;
/// let t = PredTable::new();
/// let mut interner = StructureInterner::new();
/// let a = interner.intern(Structure::new(&t));
/// let b = interner.intern(Structure::new(&t));
/// assert_eq!(a, b, "equal structures intern to the same id");
/// assert_eq!(interner.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct StructureInterner {
    arena: Vec<Structure>,
    /// fingerprint → candidate ids with that fingerprint.
    buckets: HashMap<u64, Vec<StructureId>>,
    /// Probes answered from the arena (structure already interned).
    hits: u64,
    /// Probes that materialized a new arena entry.
    misses: u64,
}

impl StructureInterner {
    /// Creates an empty interner.
    pub fn new() -> StructureInterner {
        StructureInterner::default()
    }

    /// Interns a structure, returning the id of the arena copy equal to it.
    ///
    /// Structures should already be in canonical node order (the engine
    /// interns [`crate::canon::canonical_key`] outputs); the interner itself
    /// only requires `==`-equality, so order-sensitive callers get exact
    /// behavior either way.
    pub fn intern(&mut self, s: Structure) -> StructureId {
        let fp = s.fingerprint();
        let bucket = self.buckets.entry(fp).or_default();
        for &id in bucket.iter() {
            if self.arena[id.index()] == s {
                self.hits += 1;
                return id;
            }
        }
        self.misses += 1;
        let id = StructureId(u32::try_from(self.arena.len()).expect("interner overflow"));
        self.arena.push(s);
        bucket.push(id);
        id
    }

    /// The structure an id refers to.
    pub fn resolve(&self, id: StructureId) -> &Structure {
        &self.arena[id.index()]
    }

    /// Number of distinct structures interned.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Probes answered by an existing arena entry (hash-consing savings).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probes that materialized a new arena entry (`misses() == len()`).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kleene::Kleene;
    use crate::pred::{PredFlags, PredTable};

    fn vocab() -> PredTable {
        let mut t = PredTable::new();
        t.add_unary("x", PredFlags::reference_variable());
        t
    }

    #[test]
    fn equal_structures_share_an_id() {
        let t = vocab();
        let mut interner = StructureInterner::new();
        let mut a = Structure::new(&t);
        a.add_node(&t);
        let ida = interner.intern(a.clone());
        let idb = interner.intern(a.clone());
        assert_eq!(ida, idb);
        assert_eq!(interner.len(), 1);
        assert_eq!(interner.resolve(ida), &a);
    }

    #[test]
    fn distinct_structures_get_distinct_ids() {
        let t = vocab();
        let x = t.lookup("x").unwrap();
        let mut interner = StructureInterner::new();
        let mut a = Structure::new(&t);
        let u = a.add_node(&t);
        let ida = interner.intern(a.clone());
        a.set_unary(&t, x, u, Kleene::True);
        let idb = interner.intern(a);
        assert_ne!(ida, idb);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn hit_and_miss_counters_track_probes() {
        let t = vocab();
        let mut interner = StructureInterner::new();
        let mut a = Structure::new(&t);
        a.add_node(&t);
        interner.intern(a.clone());
        interner.intern(a.clone());
        interner.intern(Structure::new(&t));
        assert_eq!(interner.hits(), 1);
        assert_eq!(interner.misses(), 2);
        assert_eq!(interner.misses(), interner.len() as u64);
    }

    #[test]
    fn fingerprint_is_content_based() {
        let t = vocab();
        let mut a = Structure::new(&t);
        a.add_node(&t);
        let b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let empty = Structure::new(&t);
        assert_ne!(a.fingerprint(), empty.fingerprint());
    }

    #[test]
    fn survives_fingerprint_collisions() {
        // Force every structure into one bucket by construction: intern many
        // distinct structures and check ids stay exact even when we simulate
        // bucket sharing through repeated interning.
        let t = vocab();
        let x = t.lookup("x").unwrap();
        let mut interner = StructureInterner::new();
        let mut ids = Vec::new();
        for i in 0..16 {
            let mut s = Structure::new(&t);
            for _ in 0..=i {
                s.add_node(&t);
            }
            let u = s.nodes().next().unwrap();
            s.set_unary(&t, x, u, Kleene::Unknown);
            ids.push(interner.intern(s.clone()));
            assert_eq!(*ids.last().unwrap(), interner.intern(s));
        }
        let mut deduped = ids.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), ids.len(), "distinct structures, distinct ids");
    }
}
