//! Hash-consing of canonically-ordered structures.
//!
//! The abstract-interpretation engine keeps every canonical structure it has
//! seen in per-location sets and merge maps. Cloning whole [`Structure`]
//! values into each of those containers — and hashing the full predicate
//! interpretation on every map probe — dominates analysis time on the larger
//! benchmarks. A [`StructureInterner`] stores each distinct structure once in
//! an arena and hands out a compact [`StructureId`]; equal structures always
//! receive the same id, so id equality is structure equality and containers
//! can key on a 4-byte copyable value.
//!
//! Lookup is keyed by the structure's 64-bit [`Structure::fingerprint`].
//! Fingerprints can collide, so each fingerprint bucket holds a list of
//! candidate ids and interning verifies candidates with full `==` before
//! reusing an id — a collision costs one structure comparison, never a wrong
//! answer.
//!
//! With the bit-packed two-plane [`Structure`] layout both halves of a probe
//! are word-parallel: the fingerprint mixes one `u64` plane word (64 truth
//! values) per FNV round, and the verifying `==` is a derived slice compare
//! over the plane vectors — the stride-padding invariant (bits past the
//! universe size are always zero) is what makes both value-exact.

use std::collections::HashMap;

use crate::structure::Structure;

/// Arena index of an interned structure. Equal ids ⇔ equal structures
/// (within one interner).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StructureId(u32);

impl StructureId {
    /// Raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A hash-consing arena for [`Structure`]s.
///
/// # Example
///
/// ```
/// use hetsep_tvl::{PredTable, Structure};
/// use hetsep_tvl::intern::StructureInterner;
/// let t = PredTable::new();
/// let mut interner = StructureInterner::new();
/// let a = interner.intern(Structure::new(&t));
/// let b = interner.intern(Structure::new(&t));
/// assert_eq!(a, b, "equal structures intern to the same id");
/// assert_eq!(interner.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct StructureInterner {
    arena: Vec<Structure>,
    /// fingerprint → candidate ids with that fingerprint.
    buckets: HashMap<u64, Vec<StructureId>>,
    /// Probes answered from the arena (structure already interned).
    hits: u64,
    /// Probes that materialized a new arena entry.
    misses: u64,
}

impl StructureInterner {
    /// Creates an empty interner.
    pub fn new() -> StructureInterner {
        StructureInterner::default()
    }

    /// Interns a structure, returning the id of the arena copy equal to it.
    ///
    /// Structures should already be in canonical node order (the engine
    /// interns [`crate::canon::canonical_key`] outputs); the interner itself
    /// only requires `==`-equality, so order-sensitive callers get exact
    /// behavior either way.
    pub fn intern(&mut self, s: Structure) -> StructureId {
        let fp = s.fingerprint();
        let bucket = self.buckets.entry(fp).or_default();
        for &id in bucket.iter() {
            if self.arena[id.index()] == s {
                self.hits += 1;
                return id;
            }
        }
        self.misses += 1;
        let id = StructureId(u32::try_from(self.arena.len()).expect("interner overflow"));
        self.arena.push(s);
        bucket.push(id);
        id
    }

    /// The structure an id refers to.
    pub fn resolve(&self, id: StructureId) -> &Structure {
        &self.arena[id.index()]
    }

    /// Number of distinct structures interned.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Probes answered by an existing arena entry (hash-consing savings).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probes that materialized a new arena entry (`misses() == len()`).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }
}

/// Number of shards in a [`WordPool`] (a power of two; the shard of an entry
/// is the low bits of its fingerprint).
pub const WORD_POOL_SHARDS: usize = 16;

/// Pool handle of a word-encoded structure. Equal ids ⇔ equal word vectors
/// (within one pool). The shard lives in the low 4 bits, the in-shard index
/// in the upper 28.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PoolId(u32);

impl PoolId {
    fn new(shard: usize, ix: usize) -> PoolId {
        let packed = (ix as u32) << 4 | shard as u32;
        assert!(packed >> 4 == ix as u32, "word pool shard overflow");
        PoolId(packed)
    }

    fn shard(self) -> usize {
        (self.0 & 0xf) as usize
    }

    fn index(self) -> usize {
        (self.0 >> 4) as usize
    }

    /// Raw packed value, for serialization.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from [`PoolId::raw`]. Validity (the id resolving in a
    /// given pool) is the caller's concern — see [`WordPool::contains`].
    pub fn from_raw(raw: u32) -> PoolId {
        PoolId(raw)
    }
}

#[derive(Debug, Default, Clone)]
struct WordShard {
    arena: Vec<Box<[u64]>>,
    /// fingerprint → in-shard candidate indices with that fingerprint.
    buckets: HashMap<u64, Vec<u32>>,
}

/// A sharded hash-consing pool for *word-encoded* structures
/// (`Structure::to_words` outputs), shared across verification jobs.
///
/// Same discipline as [`StructureInterner`] — fingerprint bucket, then full
/// slice equality before reusing an id, so a collision costs one comparison
/// and never a wrong answer — but over plain word vectors, which keeps the
/// pool independent of any predicate table and lets one pool back jobs with
/// different vocabularies. Sharding by fingerprint bits keeps individual
/// hash maps small at corpus scale; lookups stay single-threaded and
/// deterministic (the job scheduler merges per-job additions in job order,
/// the same discipline the subproblem scheduler uses for site results).
#[derive(Debug, Clone)]
pub struct WordPool {
    shards: Vec<WordShard>,
    len: usize,
}

impl Default for WordPool {
    fn default() -> WordPool {
        WordPool {
            shards: vec![WordShard::default(); WORD_POOL_SHARDS],
            len: 0,
        }
    }
}

impl WordPool {
    /// Creates an empty pool.
    pub fn new() -> WordPool {
        WordPool::default()
    }

    fn fingerprint(words: &[u64]) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        h = (h ^ words.len() as u64).wrapping_mul(PRIME);
        for &w in words {
            h = (h ^ w).wrapping_mul(PRIME);
        }
        h
    }

    /// Interns a word vector, returning the id of the pool copy equal to it.
    pub fn intern(&mut self, words: &[u64]) -> PoolId {
        let fp = Self::fingerprint(words);
        let shard_ix = (fp as usize) % WORD_POOL_SHARDS;
        let shard = &mut self.shards[shard_ix];
        let bucket = shard.buckets.entry(fp).or_default();
        for &ix in bucket.iter() {
            if &*shard.arena[ix as usize] == words {
                return PoolId::new(shard_ix, ix as usize);
            }
        }
        let ix = shard.arena.len();
        shard.arena.push(words.into());
        bucket.push(ix as u32);
        self.len += 1;
        PoolId::new(shard_ix, ix)
    }

    /// Read-only probe: the id of an equal entry, if one exists.
    pub fn get(&self, words: &[u64]) -> Option<PoolId> {
        let fp = Self::fingerprint(words);
        let shard_ix = (fp as usize) % WORD_POOL_SHARDS;
        let shard = &self.shards[shard_ix];
        let bucket = shard.buckets.get(&fp)?;
        bucket
            .iter()
            .find(|&&ix| &*shard.arena[ix as usize] == words)
            .map(|&ix| PoolId::new(shard_ix, ix as usize))
    }

    /// The word vector an id refers to.
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from this pool (or
    /// [`WordPool::contains`] is false for it).
    pub fn resolve(&self, id: PoolId) -> &[u64] {
        &self.shards[id.shard()].arena[id.index()]
    }

    /// Whether `id` resolves in this pool (used to validate deserialized
    /// ids).
    pub fn contains(&self, id: PoolId) -> bool {
        id.shard() < self.shards.len() && id.index() < self.shards[id.shard()].arena.len()
    }

    /// Number of distinct entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All entries in deterministic (shard-major, insertion) order, for
    /// serialization.
    pub fn iter(&self) -> impl Iterator<Item = (PoolId, &[u64])> {
        self.shards.iter().enumerate().flat_map(|(s, shard)| {
            shard
                .arena
                .iter()
                .enumerate()
                .map(move |(ix, words)| (PoolId::new(s, ix), &**words))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kleene::Kleene;
    use crate::pred::{PredFlags, PredTable};

    fn vocab() -> PredTable {
        let mut t = PredTable::new();
        t.add_unary("x", PredFlags::reference_variable());
        t
    }

    #[test]
    fn equal_structures_share_an_id() {
        let t = vocab();
        let mut interner = StructureInterner::new();
        let mut a = Structure::new(&t);
        a.add_node(&t);
        let ida = interner.intern(a.clone());
        let idb = interner.intern(a.clone());
        assert_eq!(ida, idb);
        assert_eq!(interner.len(), 1);
        assert_eq!(interner.resolve(ida), &a);
    }

    #[test]
    fn distinct_structures_get_distinct_ids() {
        let t = vocab();
        let x = t.lookup("x").unwrap();
        let mut interner = StructureInterner::new();
        let mut a = Structure::new(&t);
        let u = a.add_node(&t);
        let ida = interner.intern(a.clone());
        a.set_unary(&t, x, u, Kleene::True);
        let idb = interner.intern(a);
        assert_ne!(ida, idb);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn hit_and_miss_counters_track_probes() {
        let t = vocab();
        let mut interner = StructureInterner::new();
        let mut a = Structure::new(&t);
        a.add_node(&t);
        interner.intern(a.clone());
        interner.intern(a.clone());
        interner.intern(Structure::new(&t));
        assert_eq!(interner.hits(), 1);
        assert_eq!(interner.misses(), 2);
        assert_eq!(interner.misses(), interner.len() as u64);
    }

    #[test]
    fn fingerprint_is_content_based() {
        let t = vocab();
        let mut a = Structure::new(&t);
        a.add_node(&t);
        let b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let empty = Structure::new(&t);
        assert_ne!(a.fingerprint(), empty.fingerprint());
    }

    #[test]
    fn survives_fingerprint_collisions() {
        // Force every structure into one bucket by construction: intern many
        // distinct structures and check ids stay exact even when we simulate
        // bucket sharing through repeated interning.
        let t = vocab();
        let x = t.lookup("x").unwrap();
        let mut interner = StructureInterner::new();
        let mut ids = Vec::new();
        for i in 0..16 {
            let mut s = Structure::new(&t);
            for _ in 0..=i {
                s.add_node(&t);
            }
            let u = s.nodes().next().unwrap();
            s.set_unary(&t, x, u, Kleene::Unknown);
            ids.push(interner.intern(s.clone()));
            assert_eq!(*ids.last().unwrap(), interner.intern(s));
        }
        let mut deduped = ids.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), ids.len(), "distinct structures, distinct ids");
    }

    #[test]
    fn word_pool_interns_exactly() {
        let mut pool = WordPool::new();
        let a = pool.intern(&[1, 2, 3]);
        let b = pool.intern(&[1, 2, 3]);
        let c = pool.intern(&[1, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.resolve(a), &[1, 2, 3]);
        assert_eq!(pool.get(&[1, 2, 4]), Some(c));
        assert_eq!(pool.get(&[9]), None);
        assert!(pool.contains(PoolId::from_raw(c.raw())));
    }

    #[test]
    fn word_pool_distributes_and_iterates_deterministically() {
        let mut pool = WordPool::new();
        let ids: Vec<PoolId> = (0..200u64).map(|i| pool.intern(&[i, i * 31])).collect();
        assert_eq!(pool.len(), 200);
        // Every id resolves to its own entry.
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(pool.resolve(*id), &[i as u64, i as u64 * 31]);
        }
        // More than one shard is populated, and iteration visits every
        // entry exactly once in a reproducible order.
        let shards: std::collections::HashSet<usize> =
            ids.iter().map(|id| (id.raw() & 0xf) as usize).collect();
        assert!(shards.len() > 1, "fingerprint sharding distributes");
        let order1: Vec<u32> = pool.iter().map(|(id, _)| id.raw()).collect();
        let order2: Vec<u32> = pool.iter().map(|(id, _)| id.raw()).collect();
        assert_eq!(order1.len(), 200);
        assert_eq!(order1, order2);
    }

    #[test]
    fn word_pool_ids_distinguish_distinct_vectors() {
        // Length is mixed into the fingerprint: a prefix never aliases.
        let mut pool = WordPool::new();
        let short = pool.intern(&[7]);
        let long = pool.intern(&[7, 0]);
        assert_ne!(short, long);
        assert_eq!(pool.resolve(short), &[7]);
        assert_eq!(pool.resolve(long), &[7, 0]);
    }
}
