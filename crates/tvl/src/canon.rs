//! Canonical abstraction (individual merging).
//!
//! The basic abstraction primitive of the parametric framework (paper §5):
//! individuals that agree on the values of all *abstraction predicates* are
//! merged into one (summary) individual, with remaining predicate values
//! joined in the information order. The paper's heterogeneous abstraction is
//! obtained by choosing the abstraction-predicate set per relevance class —
//! realized here exactly as in the paper's prototype, by registering combined
//! predicates `p_r(o) = p(o) ∧ relevant(o)` as the abstraction predicates
//! (see `hetsep-core`).

use crate::kleene::Kleene;
use crate::pred::{Arity, PredId, PredTable};
use crate::structure::{NodeId, Structure};

/// The *canonical name* of an individual: its vector of abstraction-predicate
/// values.
pub fn canonical_name(s: &Structure, table: &PredTable, abs: &[PredId], u: NodeId) -> Vec<Kleene> {
    abs.iter().map(|&p| s.unary(table, p, u)).collect()
}

/// Builds the packed canonical-name matrix: one row of `words_per_name(k)`
/// `u64` words per node, holding the node's `k` predicate values as 2-bit
/// codes (`False`=0, `Unknown`=1, `True`=2 — the Kleene truth order) packed
/// most-significant-first. Lexicographic comparison of the word rows is then
/// exactly lexicographic comparison of the Kleene value rows, so sorting and
/// grouping compare one `u64` per 32 predicates instead of one byte each.
fn packed_name_rows(s: &Structure, table: &PredTable, preds: &[PredId]) -> (Vec<u64>, usize) {
    for &p in preds {
        assert_eq!(table.arity(p), Arity::Unary, "canonical names are unary");
    }
    let slots: Vec<usize> = preds.iter().map(|&p| table.slot(p)).collect();
    let wpn = preds.len().div_ceil(32);
    let mut rows = vec![0u64; s.node_count() * wpn];
    for u in 0..s.node_count() {
        let base = u * wpn;
        for (j, &slot) in slots.iter().enumerate() {
            let code = s.get_u(slot, u) as u64;
            rows[base + j / 32] |= code << (62 - 2 * (j % 32));
        }
    }
    (rows, wpn)
}

/// Merges all individuals that share a canonical name (the `s/≃` quotient of
/// paper §5), using the currently-flagged abstraction predicates of `table`.
///
/// Returns the blurred structure together with the map from old node ids to
/// the merged node ids.
pub fn blur_with_map(s: &Structure, table: &PredTable) -> (Structure, Vec<NodeId>) {
    let abs = table.abstraction_preds();
    blur_by(s, table, &abs)
}

/// Like [`blur_with_map`] but drops the node map.
pub fn blur(s: &Structure, table: &PredTable) -> Structure {
    blur_with_map(s, table).0
}

/// Merges individuals by canonical name computed over an explicit abstraction
/// predicate set `abs` (all must be unary).
///
/// The merged structure's nodes are ordered by ascending canonical name, so
/// blurred structures are directly comparable with `==` and hashable — two
/// blurred structures over the same table are isomorphic iff they are equal.
pub fn blur_by(s: &Structure, table: &PredTable, abs: &[PredId]) -> (Structure, Vec<NodeId>) {
    // Group nodes by canonical name. This is the hottest allocation site of
    // the whole analysis (one call per post-structure), so instead of a
    // `HashMap<Vec<Kleene>, Vec<NodeId>>` with a fresh name vector per node,
    // canonical names live in one flat matrix of 2-bit-packed word rows (see
    // `packed_name_rows` — word order coincides with Kleene row order) and
    // grouping is a stable sort of the node order by name row. The stable
    // sort keeps members of a group in ascending node order and yields
    // groups in ascending canonical-name order — exactly the ordering the
    // map-based grouping produced (names are unique per group, so sorting
    // the collected map entries compared names only).
    let n_old = s.node_count();
    let (names, wpn) = packed_name_rows(s, table, abs);
    let name_row = |u: NodeId| &names[u.index() * wpn..u.index() * wpn + wpn];
    let mut order: Vec<NodeId> = s.nodes().collect();
    order.sort_by(|&a, &b| name_row(a).cmp(name_row(b)));
    // Group boundaries: maximal runs of `order` with equal name rows.
    let mut groups: Vec<std::ops::Range<usize>> = Vec::new();
    let mut start = 0;
    for i in 1..=order.len() {
        if i == order.len() || name_row(order[i]) != name_row(order[start]) {
            groups.push(start..i);
            start = i;
        }
    }

    let n_new = groups.len();
    // Fast path: nothing merges. With every group a singleton the general
    // path below degenerates to a permutation of `s` by `order` (joins are
    // over one member; `sm` is untouched), so skip the per-predicate
    // O(n²) join loops entirely.
    if n_new == n_old {
        let identity = order.iter().enumerate().all(|(ix, u)| u.index() == ix);
        if identity {
            return (s.clone(), order);
        }
        let mut map = vec![NodeId::from_index(0); n_old];
        for (new_ix, old) in order.iter().enumerate() {
            map[old.index()] = NodeId::from_index(new_ix);
        }
        return (s.permute(&order), map);
    }
    let mut map = vec![NodeId::from_index(0); n_old];
    for (new_ix, g) in groups.iter().enumerate() {
        for &m in &order[g.clone()] {
            map[m.index()] = NodeId::from_index(new_ix);
        }
    }

    let mut out = Structure::new(table);
    out.add_nodes(table, n_new);
    // Nullary predicates carry over unchanged.
    for p in table.iter_arity(crate::pred::Arity::Nullary) {
        out.set_nullary(table, p, s.nullary(table, p));
    }
    // Unary: join across members; sm additionally reflects merging.
    let sm = table.sm();
    for p in table.iter_arity(crate::pred::Arity::Unary) {
        for (new_ix, g) in groups.iter().enumerate() {
            let members = &order[g.clone()];
            let mut acc: Option<Kleene> = None;
            for &m in members {
                let v = s.unary(table, p, m);
                acc = Some(match acc {
                    None => v,
                    Some(a) => a.join(v),
                });
            }
            let mut v = acc.expect("group is nonempty");
            if p == sm && members.len() > 1 {
                v = Kleene::Unknown;
            }
            out.set_unary(table, p, NodeId::from_index(new_ix), v);
        }
    }
    // Binary: join across all member pairs.
    for p in table.iter_arity(crate::pred::Arity::Binary) {
        for (si, sg) in groups.iter().enumerate() {
            let src_members = &order[sg.clone()];
            for (di, dg) in groups.iter().enumerate() {
                let dst_members = &order[dg.clone()];
                let mut acc: Option<Kleene> = None;
                for &sm_ in src_members {
                    for &dm in dst_members {
                        let v = s.binary(table, p, sm_, dm);
                        acc = Some(match acc {
                            None => v,
                            Some(a) => a.join(v),
                        });
                    }
                }
                out.set_binary(
                    table,
                    p,
                    NodeId::from_index(si),
                    NodeId::from_index(di),
                    acc.expect("groups are nonempty"),
                );
            }
        }
    }
    (out, map)
}

/// A hash-/equality-ready canonical key for a blurred structure.
///
/// Obtained from [`canonical_key`]; two structures over the same table get
/// equal keys iff their blurred forms are isomorphic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalKey(Structure);

impl CanonicalKey {
    /// The canonically-ordered structure underlying this key.
    pub fn structure(&self) -> &Structure {
        &self.0
    }

    /// Extracts the canonically-ordered structure.
    pub fn into_structure(self) -> Structure {
        self.0
    }

    /// A 64-bit fingerprint of the canonical form (see
    /// [`Structure::fingerprint`]). Because the underlying structure is
    /// canonically ordered, isomorphic structures get equal fingerprints.
    pub fn fingerprint(&self) -> u64 {
        self.0.fingerprint()
    }
}

/// Canonicalizes an *already blurred* structure into a key: nodes are sorted
/// by canonical name (which is unique per node after blurring).
///
/// For structures that are not blurred the key is still deterministic, but
/// two isomorphic non-blurred structures with duplicate canonical names may
/// receive different keys; callers in the analysis engine always key blurred
/// structures, where keys coincide exactly with isomorphism classes.
pub fn canonical_key(s: &Structure, table: &PredTable) -> CanonicalKey {
    // Sort nodes by (canonical name, full unary row) for determinism. The
    // rows are precomputed into one flat matrix of 2-bit-packed words (word
    // order equals Kleene row order; see `packed_name_rows`): a sort key
    // closure would recompute — and reallocate — both vectors on every
    // comparison.
    let mut preds = table.abstraction_preds();
    preds.extend(table.iter_arity(Arity::Unary));
    let (rows, wpn) = packed_name_rows(s, table, &preds);
    let row = |u: NodeId| &rows[u.index() * wpn..u.index() * wpn + wpn];
    let mut order: Vec<NodeId> = s.nodes().collect();
    order.sort_by(|&a, &b| row(a).cmp(row(b)));
    CanonicalKey(s.permute(&order))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::PredFlags;

    fn table() -> (PredTable, PredId, PredId, PredId) {
        let mut t = PredTable::new();
        let x = t.add_unary("x", PredFlags::reference_variable());
        let c = t.add_unary("closed", PredFlags::boolean_field());
        let f = t.add_binary("f", PredFlags::reference_field());
        (t, x, c, f)
    }

    #[test]
    fn blur_merges_same_named_nodes() {
        let (t, x, c, f) = table();
        let mut s = Structure::new(&t);
        let a = s.add_node(&t); // x=1
        let b = s.add_node(&t); // plain
        let d = s.add_node(&t); // plain
        s.set_unary(&t, x, a, Kleene::True);
        s.set_binary(&t, f, a, b, Kleene::True);
        let (blurred, map) = blur_with_map(&s, &t);
        assert_eq!(blurred.node_count(), 2);
        let na = map[a.index()];
        let nb = map[b.index()];
        assert_eq!(map[d.index()], nb, "b and d share a canonical name");
        assert_ne!(na, nb);
        assert_eq!(blurred.unary(&t, x, na), Kleene::True);
        // b had an incoming f edge, d did not: joined to Unknown.
        assert_eq!(blurred.binary(&t, f, na, nb), Kleene::Unknown);
        // Merged node is summary; singleton stays non-summary.
        assert!(blurred.is_summary(&t, nb));
        assert!(!blurred.is_summary(&t, na));
        let _ = c;
    }

    #[test]
    fn blur_is_idempotent() {
        let (t, x, _c, f) = table();
        let mut s = Structure::new(&t);
        let a = s.add_node(&t);
        let b = s.add_node(&t);
        let d = s.add_node(&t);
        s.set_unary(&t, x, a, Kleene::True);
        s.set_binary(&t, f, a, b, Kleene::True);
        s.set_binary(&t, f, b, d, Kleene::Unknown);
        let once = blur(&s, &t);
        let twice = blur(&once, &t);
        assert_eq!(
            canonical_key(&once, &t),
            canonical_key(&twice, &t),
            "blur must be idempotent up to node order"
        );
    }

    #[test]
    fn blur_distinguishes_abstraction_values() {
        let (t, _x, c, _f) = table();
        let mut s = Structure::new(&t);
        let a = s.add_node(&t);
        let b = s.add_node(&t);
        s.set_unary(&t, c, a, Kleene::True);
        s.set_unary(&t, c, b, Kleene::False);
        let blurred = blur(&s, &t);
        assert_eq!(blurred.node_count(), 2, "different closed values stay apart");
    }

    #[test]
    fn canonical_key_identifies_isomorphic() {
        let (t, x, _c, f) = table();
        // s1: node0=x-node → node1
        let mut s1 = Structure::new(&t);
        let a = s1.add_node(&t);
        let b = s1.add_node(&t);
        s1.set_unary(&t, x, a, Kleene::True);
        s1.set_binary(&t, f, a, b, Kleene::True);
        // s2: same but with nodes created in opposite order
        let mut s2 = Structure::new(&t);
        let b2 = s2.add_node(&t);
        let a2 = s2.add_node(&t);
        s2.set_unary(&t, x, a2, Kleene::True);
        s2.set_binary(&t, f, a2, b2, Kleene::True);
        assert_ne!(s1, s2, "raw structures differ in node order");
        assert_eq!(canonical_key(&s1, &t), canonical_key(&s2, &t));
    }

    #[test]
    fn canonical_key_separates_nonisomorphic() {
        let (t, x, _c, f) = table();
        let mut s1 = Structure::new(&t);
        let a = s1.add_node(&t);
        let b = s1.add_node(&t);
        s1.set_unary(&t, x, a, Kleene::True);
        s1.set_binary(&t, f, a, b, Kleene::True);
        let mut s2 = s1.clone();
        s2.set_binary(&t, f, b, a, Kleene::True);
        assert_ne!(canonical_key(&s1, &t), canonical_key(&s2, &t));
    }

    #[test]
    fn blur_preserves_nullary() {
        let mut t = PredTable::new();
        let g = t.add_nullary("g", PredFlags::default());
        let mut s = Structure::new(&t);
        s.add_node(&t);
        s.add_node(&t);
        s.set_nullary(&t, g, Kleene::True);
        let blurred = blur(&s, &t);
        assert_eq!(blurred.nullary(&t, g), Kleene::True);
        assert_eq!(blurred.node_count(), 1);
    }

    #[test]
    fn blur_with_no_abstraction_preds_collapses_all() {
        let mut t = PredTable::new();
        let f = t.add_binary("f", PredFlags::reference_field());
        let mut s = Structure::new(&t);
        let a = s.add_node(&t);
        let b = s.add_node(&t);
        let c = s.add_node(&t);
        s.set_binary(&t, f, a, b, Kleene::True);
        s.set_binary(&t, f, b, c, Kleene::True);
        let blurred = blur(&s, &t);
        assert_eq!(blurred.node_count(), 1);
        let u = NodeId::from_index(0);
        assert!(blurred.is_summary(&t, u));
        assert_eq!(blurred.binary(&t, f, u, u), Kleene::Unknown);
    }
}
