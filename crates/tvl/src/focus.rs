//! Focus (materialization).
//!
//! Focus takes an abstract structure and a *focus specification* and produces
//! a set of structures that collectively represent the same concrete states
//! but in which the focused property has a definite value everywhere. This is
//! the precision-recovering step of the parametric framework: e.g. before
//! `y = x.f` executes, the target of the `f`-edge leaving the `x`-node is
//! materialized out of any summary node so the engine can perform a strong
//! update.
//!
//! We implement the two materialization shapes required by the statement
//! language of the paper (reference variables and field dereference); this is
//! the same subset exercised by the paper's front end. Focus is *sound by
//! construction*: when the expansion budget is exhausted the remaining
//! structures are returned with their `1/2` values intact (less precise, never
//! wrong).

use crate::kleene::Kleene;
use crate::pred::{Arity, PredId, PredTable};
use crate::structure::Structure;

/// A materialization request attached to an action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FocusSpec {
    /// Make the unary predicate definite on every individual
    /// (materializes e.g. the node pointed to by a reference variable).
    Unary(PredId),
    /// Make `field(n, v)` definite for every `v`, where `n` is the unique
    /// individual on which the unary predicate `src` definitely holds.
    /// If no such individual exists the spec is a no-op.
    EdgeFrom {
        /// Unary predicate identifying the edge source (a reference variable).
        src: PredId,
        /// The binary field predicate whose outgoing edges are materialized.
        field: PredId,
    },
}

/// Default bound on the number of structures a single focus step may produce.
pub const DEFAULT_FOCUS_LIMIT: usize = 8192;

/// Applies one focus specification to a structure.
///
/// Returns a set of structures whose union represents every concrete state
/// the input represents. If expanding would exceed `limit` structures, the
/// remaining indefinite values are left as `1/2` (sound, less precise).
pub fn focus(s: &Structure, table: &PredTable, spec: &FocusSpec, limit: usize) -> Vec<Structure> {
    match spec {
        FocusSpec::Unary(p) => focus_unary(s, table, *p, limit),
        FocusSpec::EdgeFrom { src, field } => focus_edge(s, table, *src, *field, limit),
    }
}

/// Applies a sequence of focus specifications left to right.
pub fn focus_all(
    s: &Structure,
    table: &PredTable,
    specs: &[FocusSpec],
    limit: usize,
) -> Vec<Structure> {
    let mut current = vec![s.clone()];
    for spec in specs {
        let mut next = Vec::new();
        for st in &current {
            next.extend(focus(st, table, spec, limit));
            if next.len() >= limit {
                // Abandon further splitting: keep the remaining structures
                // unfocused rather than exploding.
                next.extend(current.iter().skip(next.len()).cloned());
                break;
            }
        }
        current = next;
    }
    current
}

fn focus_unary(s: &Structure, table: &PredTable, p: PredId, limit: usize) -> Vec<Structure> {
    assert_eq!(table.arity(p), Arity::Unary);
    let slot = table.slot(p);
    let mut done: Vec<Structure> = Vec::new();
    let mut work: Vec<Structure> = vec![s.clone()];
    while let Some(st) = work.pop() {
        // The next node still carrying 1/2 is the lowest set bit of the
        // slot's half-plane — a word scan, not a per-node probe loop.
        let Some(u) = st.first_unknown_unary(slot) else {
            done.push(st);
            continue;
        };
        if done.len() + work.len() >= limit {
            done.push(st); // budget exhausted: keep the 1/2 (sound)
            done.extend(work);
            return done;
        }
        // Variant 1: definitely false.
        let mut v0 = st.clone();
        v0.set_unary(table, p, u, Kleene::False);
        work.push(v0);
        // Variant 2: definitely true.
        let mut v1 = st.clone();
        v1.set_unary(table, p, u, Kleene::True);
        work.push(v1);
        // Variant 3 (summary only): bifurcate into a p-individual and the rest.
        if st.is_summary(table, u) {
            let mut v2 = st.clone();
            let fresh = v2.duplicate_node(table, u);
            v2.set_unary(table, p, u, Kleene::True);
            v2.set_unary(table, p, fresh, Kleene::False);
            work.push(v2);
        }
    }
    done
}

fn focus_edge(
    s: &Structure,
    table: &PredTable,
    src: PredId,
    field: PredId,
    limit: usize,
) -> Vec<Structure> {
    assert_eq!(table.arity(field), Arity::Binary);
    let field_slot = table.slot(field);
    let mut done: Vec<Structure> = Vec::new();
    let mut work: Vec<Structure> = vec![s.clone()];
    while let Some(st) = work.pop() {
        let Some(n) = st.definite_node(table, src) else {
            done.push(st); // no definite source: nothing to focus
            continue;
        };
        // First 1/2-valued outgoing edge: lowest set bit of the source row's
        // half-plane.
        let Some(v) = st.first_unknown_in_row(field_slot, n.index()) else {
            done.push(st);
            continue;
        };
        if done.len() + work.len() >= limit {
            done.push(st);
            done.extend(work);
            return done;
        }
        let mut v0 = st.clone();
        v0.set_binary(table, field, n, v, Kleene::False);
        work.push(v0);
        let mut v1 = st.clone();
        v1.set_binary(table, field, n, v, Kleene::True);
        work.push(v1);
        if st.is_summary(table, v) {
            // Split the summary target into the pointed-to individual and the
            // remainder.
            let mut v2 = st.clone();
            let fresh = v2.duplicate_node(table, v);
            v2.set_binary(table, field, n, v, Kleene::True);
            v2.set_binary(table, field, n, fresh, Kleene::False);
            work.push(v2);
        }
    }
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::embeds;
    use crate::pred::PredFlags;

    fn table() -> (PredTable, PredId, PredId) {
        let mut t = PredTable::new();
        let x = t.add_unary("x", PredFlags::reference_variable());
        let f = t.add_binary("f", PredFlags::reference_field());
        (t, x, f)
    }

    #[test]
    fn focus_unary_definite_is_identity() {
        let (t, x, _f) = table();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::True);
        let out = focus(&s, &t, &FocusSpec::Unary(x), DEFAULT_FOCUS_LIMIT);
        assert_eq!(out, vec![s]);
    }

    #[test]
    fn focus_unary_nonsummary_splits_in_two() {
        let (t, x, _f) = table();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::Unknown);
        let out = focus(&s, &t, &FocusSpec::Unary(x), DEFAULT_FOCUS_LIMIT);
        assert_eq!(out.len(), 2);
        let mut vals: Vec<Kleene> = out.iter().map(|st| st.unary(&t, x, u)).collect();
        vals.sort();
        assert_eq!(vals, vec![Kleene::False, Kleene::True]);
    }

    #[test]
    fn focus_unary_summary_splits_in_three() {
        let (t, x, _f) = table();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        s.set_summary(&t, u, true);
        s.set_unary(&t, x, u, Kleene::Unknown);
        let out = focus(&s, &t, &FocusSpec::Unary(x), DEFAULT_FOCUS_LIMIT);
        assert_eq!(out.len(), 3);
        // One variant has two nodes (the bifurcation).
        let sizes: Vec<usize> = {
            let mut v: Vec<usize> = out.iter().map(Structure::node_count).collect();
            v.sort();
            v
        };
        assert_eq!(sizes, vec![1, 1, 2]);
        // Every output has x definite on all nodes.
        for st in &out {
            for n in st.nodes() {
                assert!(st.unary(&t, x, n).is_definite());
            }
        }
    }

    #[test]
    fn focus_outputs_cover_original() {
        // Soundness: each concrete state embedded in the input is embedded in
        // some output. We use a concrete 2-node chain and its blur.
        let (t, x, f) = table();
        let mut conc = Structure::new(&t);
        let a = conc.add_node(&t);
        let b = conc.add_node(&t);
        let c = conc.add_node(&t);
        conc.set_unary(&t, x, a, Kleene::True);
        conc.set_binary(&t, f, a, b, Kleene::True);
        conc.set_binary(&t, f, b, c, Kleene::True);
        let abs = crate::canon::blur(&conc, &t);
        let out = focus(&abs, &t, &FocusSpec::EdgeFrom { src: x, field: f }, DEFAULT_FOCUS_LIMIT);
        assert!(
            out.iter().any(|st| embeds(&conc, st, &t)),
            "some focused structure must still embed the concrete state"
        );
    }

    #[test]
    fn focus_edge_materializes_target() {
        let (t, x, f) = table();
        // x → u ; u --1/2--> summary node
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let sumn = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::True);
        s.set_summary(&t, sumn, true);
        s.set_binary(&t, f, u, sumn, Kleene::Unknown);
        let out = focus(&s, &t, &FocusSpec::EdgeFrom { src: x, field: f }, DEFAULT_FOCUS_LIMIT);
        assert_eq!(out.len(), 3);
        for st in &out {
            let n = st.definite_node(&t, x).unwrap();
            for v in st.nodes() {
                assert!(
                    st.binary(&t, f, n, v).is_definite(),
                    "outgoing f edge must be definite"
                );
            }
        }
        // The bifurcating variant exposes a definite singleton target edge.
        assert!(out.iter().any(|st| {
            let n = st.definite_node(&t, x).unwrap();
            st.nodes()
                .any(|v| st.binary(&t, f, n, v) == Kleene::True)
        }));
    }

    #[test]
    fn focus_edge_without_definite_source_is_noop() {
        let (t, x, f) = table();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::Unknown);
        let out = focus(&s, &t, &FocusSpec::EdgeFrom { src: x, field: f }, DEFAULT_FOCUS_LIMIT);
        assert_eq!(out, vec![s]);
    }

    #[test]
    fn focus_respects_limit() {
        let (t, x, _f) = table();
        let mut s = Structure::new(&t);
        for _ in 0..6 {
            let u = s.add_node(&t);
            s.set_unary(&t, x, u, Kleene::Unknown);
        }
        let out = focus(&s, &t, &FocusSpec::Unary(x), 4);
        // Budget hit: output is bounded and still sound (some 1/2 remain).
        assert!(out.len() <= 4 + 6, "got {}", out.len());
        assert!(out
            .iter()
            .any(|st| st.nodes().any(|u| !st.unary(&t, x, u).is_definite())));
    }

    #[test]
    fn focus_all_chains_specs() {
        let (t, x, f) = table();
        let mut t2 = t;
        let y = t2.add_unary("y", PredFlags::reference_variable());
        let mut s = Structure::new(&t2);
        let u = s.add_node(&t2);
        let v = s.add_node(&t2);
        s.set_unary(&t2, x, u, Kleene::Unknown);
        s.set_unary(&t2, y, v, Kleene::Unknown);
        let out = focus_all(
            &s,
            &t2,
            &[FocusSpec::Unary(x), FocusSpec::Unary(y)],
            DEFAULT_FOCUS_LIMIT,
        );
        assert_eq!(out.len(), 4);
        let _ = f;
    }
}
