//! Actions: the operational semantics of a first-order transition system.
//!
//! A program statement is modelled as an [`Action`] that transforms incoming
//! structures into outgoing structures (paper §4.2, "Operational Semantics").
//! Applying an action performs, in order:
//!
//! 1. **focus** on the action's [`FocusSpec`]s (materialization),
//! 2. **coerce** (discard infeasible variants, sharpen),
//! 3. **assume** filtering (branch conditions),
//! 4. **checks** — the `requires` preconditions of the safety property; a
//!    check that is not definitely satisfied produces a [`CheckViolation`],
//! 5. **allocation** of a fresh individual (marked by the built-in `isnew`
//!    predicate) if the action allocates,
//! 6. simultaneous **core updates** — each updated predicate's new value is
//!    its update formula evaluated over the *pre*-state,
//! 7. sequential **derived updates** — instrumentation predicates recomputed
//!    over the evolving *post*-state (in dependency order),
//! 8. clearing of `isnew` and a final **coerce**.
//!
//! Canonical abstraction (blur) is *not* performed here; the analysis engine
//! blurs when joining into a program location.

use crate::coerce::{coerce_with, CoercePlan};
use crate::eval::{eval_closed, eval_memo, Assignment, TcMemo};
use crate::focus::{focus_all, FocusSpec};
use crate::formula::{Formula, Var};
use crate::kleene::Kleene;
use crate::pred::{Arity, PredId, PredTable};
use crate::structure::Structure;
use crate::telemetry::{Counter, Phase, RunMetrics};

/// An update `p(args) := rhs`, where `args` are the free variables of `rhs`
/// that range over the universe (one for unary, two for binary predicates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredUpdate {
    /// The predicate being updated.
    pub pred: PredId,
    /// Formal parameters: `[]` (nullary), `[v]` (unary) or `[v, w]` (binary).
    pub args: Vec<Var>,
    /// New value of the predicate, as a formula over the pre-state (core
    /// updates) or the evolving post-state (derived updates).
    pub rhs: Formula,
    /// When `true`, the update *refines*: an indefinite (`1/2`) evaluation
    /// keeps the previously stored value instead of overwriting it. Used for
    /// abstraction-directing predicates (e.g. `relevant`) whose re-evaluated
    /// formula loses definiteness on blurred structures — the stored value
    /// only directs individual merging, so retaining it is sound (it plays
    /// the role of the finite-differencing maintenance of Reps et al. in the
    /// paper's implementation).
    pub refine: bool,
    /// When `true`, the update is re-applied to a fixpoint (bounded by the
    /// universe size): each round evaluates `rhs` against the previous
    /// round's values. Used for closure-style predicates whose defining
    /// formula references the predicate itself one step away (e.g.
    /// `relevant(v) = chosen(v) ∨ ∃w. edge(v,w) ∧ relevant(w)`).
    pub iterate: bool,
}

impl PredUpdate {
    /// An update of a nullary predicate.
    pub fn nullary(pred: PredId, rhs: Formula) -> PredUpdate {
        PredUpdate { pred, args: Vec::new(), rhs, refine: false, iterate: false }
    }

    /// An update of a unary predicate with formal parameter `v`.
    pub fn unary(pred: PredId, v: Var, rhs: Formula) -> PredUpdate {
        PredUpdate { pred, args: vec![v], rhs, refine: false, iterate: false }
    }

    /// A refining update of a unary predicate (see [`PredUpdate::refine`]).
    pub fn unary_refine(pred: PredId, v: Var, rhs: Formula) -> PredUpdate {
        PredUpdate { pred, args: vec![v], rhs, refine: true, iterate: false }
    }

    /// A refining, iterated-to-fixpoint update of a unary predicate (see
    /// [`PredUpdate::refine`] and [`PredUpdate::iterate`]).
    pub fn unary_closure(pred: PredId, v: Var, rhs: Formula) -> PredUpdate {
        PredUpdate { pred, args: vec![v], rhs, refine: true, iterate: true }
    }

    /// An update of a binary predicate with formal parameters `v`, `w`.
    pub fn binary(pred: PredId, v: Var, w: Var, rhs: Formula) -> PredUpdate {
        PredUpdate { pred, args: vec![v, w], rhs, refine: false, iterate: false }
    }
}

/// Allocation request: create one fresh individual. While the updates run it
/// is identified by the built-in `isnew` predicate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NewNodeSpec {
    /// Whether the freshly created node starts as a non-summary individual
    /// (always true in this crate; present for future extensions).
    pub singleton: bool,
}

/// A `requires` precondition check carried by an action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Check {
    /// The condition required to hold (closed formula).
    pub cond: Formula,
    /// Optional guard: the check applies only when this formula may hold
    /// (used to restrict checking to *chosen* objects, paper §4.2).
    pub guard: Option<Formula>,
    /// Identifier used in error reports (e.g. "read after close").
    pub label: String,
}

/// A possibly-failed check, produced when `cond` is not definitely true on a
/// structure whose guard may hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckViolation {
    /// Index of the violated check within [`Action::checks`].
    pub check_index: usize,
    /// The check's label.
    pub label: String,
    /// Value the condition evaluated to (`False` = definite violation,
    /// `Unknown` = possible violation).
    pub value: Kleene,
}

/// A structure transformer modelling one program statement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Action {
    /// Human-readable name (statement text), used in traces and reports.
    pub name: String,
    /// Materialization requests executed before everything else.
    pub focus: Vec<FocusSpec>,
    /// Branch condition: structures on which it is definitely false are
    /// dropped; `None` keeps all structures.
    pub assume: Option<Formula>,
    /// `requires` checks evaluated on the (focused, assumed) pre-state.
    pub checks: Vec<Check>,
    /// Allocation of a fresh individual.
    pub new_node: Option<NewNodeSpec>,
    /// Simultaneous core updates evaluated over the pre-state.
    pub updates: Vec<PredUpdate>,
    /// Sequential derived updates (instrumentation predicates) evaluated over
    /// the evolving post-state.
    pub derived: Vec<PredUpdate>,
}

impl Action {
    /// Creates an action with the given display name and no effect.
    pub fn named(name: impl Into<String>) -> Action {
        Action {
            name: name.into(),
            ..Action::default()
        }
    }

    /// Whether the action is a pure no-op (no focus, filter, check, or update).
    pub fn is_identity(&self) -> bool {
        self.focus.is_empty()
            && self.assume.is_none()
            && self.checks.is_empty()
            && self.new_node.is_none()
            && self.updates.is_empty()
            && self.derived.is_empty()
    }
}

/// The outcome of applying an action to one structure.
#[derive(Debug, Clone, Default)]
pub struct ApplyOutcome {
    /// Post-states (not blurred).
    pub results: Vec<Structure>,
    /// Checks that were possibly violated on some focused variant.
    pub violations: Vec<CheckViolation>,
}

/// Applies `action` to `s`, with a focus expansion budget of `focus_limit`
/// (use [`crate::focus::DEFAULT_FOCUS_LIMIT`] unless tuning).
pub fn apply(action: &Action, s: &Structure, table: &PredTable, focus_limit: usize) -> ApplyOutcome {
    apply_traced(action, s, table, focus_limit, &mut RunMetrics::disabled())
}

/// [`apply`] with observability: per-phase invocation counts (and durations,
/// when `metrics` was created timed) for focus, coerce, and the update
/// transform, plus [`Counter::FocusVariants`] / [`Counter::CoerceInfeasible`]
/// / [`Counter::PostStructures`]. Results are identical to [`apply`] —
/// metrics collection is observation-only.
pub fn apply_traced(
    action: &Action,
    s: &Structure,
    table: &PredTable,
    focus_limit: usize,
    metrics: &mut RunMetrics,
) -> ApplyOutcome {
    apply_planned(action, s, table, &CoercePlan::new(table), focus_limit, metrics)
}

/// [`apply_traced`] with a precompiled [`CoercePlan`]. The plan must have
/// been built from the same `table`; results are identical to
/// [`apply_traced`], which compiles a fresh plan per call. Hot loops (the
/// analysis engine) compile the plan once per run and call this directly.
pub fn apply_planned(
    action: &Action,
    s: &Structure,
    table: &PredTable,
    plan: &CoercePlan,
    focus_limit: usize,
    metrics: &mut RunMetrics,
) -> ApplyOutcome {
    let mut outcome = ApplyOutcome::default();
    let focused = metrics.time(Phase::Focus, || {
        focus_all(s, table, &action.focus, focus_limit)
    });
    metrics
        .counters
        .add(Counter::FocusVariants, focused.len() as u64);
    for f in focused {
        let Some(f) = metrics.time(Phase::Coerce, || coerce_with(&f, table, plan).feasible())
        else {
            metrics.counters.add(Counter::CoerceInfeasible, 1);
            continue;
        };
        // Branch condition.
        if let Some(cond) = &action.assume {
            if eval_closed(&f, table, cond) == Kleene::False {
                continue;
            }
        }
        // Requires checks on the pre-state.
        for (ix, check) in action.checks.iter().enumerate() {
            let applicable = match &check.guard {
                Some(g) => eval_closed(&f, table, g).maybe_true(),
                None => true,
            };
            if !applicable {
                continue;
            }
            let v = eval_closed(&f, table, &check.cond);
            if v.maybe_false() {
                outcome.violations.push(CheckViolation {
                    check_index: ix,
                    label: check.label.clone(),
                    value: v,
                });
            }
        }
        // Allocation + updates.
        let post = metrics.time(Phase::Update, || transform(action, &f, table));
        match metrics.time(Phase::Coerce, || coerce_with(&post, table, plan).feasible()) {
            Some(post) => {
                metrics.counters.add(Counter::PostStructures, 1);
                outcome.results.push(post);
            }
            None => metrics.counters.add(Counter::CoerceInfeasible, 1),
        }
    }
    outcome
}

/// Applies allocation and updates (steps 5–8) without focus/checks.
fn transform(action: &Action, pre: &Structure, table: &PredTable) -> Structure {
    let mut staged = pre.clone();
    if action.new_node.is_some() {
        let fresh = staged.add_node(table);
        staged.set_unary(table, table.isnew(), fresh, Kleene::True);
    }
    // Core updates: all RHS evaluated over `staged` (the pre-state plus the
    // fresh node), results written into `post`. One TC memo spans all core
    // updates — they all read the same fixed `staged`.
    let mut post = staged.clone();
    let mut memo = TcMemo::new();
    for up in &action.updates {
        write_update(&staged, &mut post, table, up, &mut memo);
    }
    // Derived updates: evaluated sequentially over the evolving post-state,
    // so each round's snapshot needs a fresh memo.
    for up in &action.derived {
        let rounds = if up.iterate {
            post.node_count() + 1
        } else {
            1
        };
        for _ in 0..rounds {
            let snapshot = post.clone();
            memo.clear();
            write_update(&snapshot, &mut post, table, up, &mut memo);
            if post == snapshot {
                break;
            }
        }
    }
    // Clear the allocation marker: a whole-plane word fill rather than a
    // per-node store loop.
    if action.new_node.is_some() {
        post.fill_unary(table, table.isnew(), Kleene::False);
    }
    post
}

fn write_update(
    src: &Structure,
    dst: &mut Structure,
    table: &PredTable,
    up: &PredUpdate,
    memo: &mut TcMemo,
) {
    match table.arity(up.pred) {
        Arity::Nullary => {
            assert!(up.args.is_empty(), "nullary update takes no args");
            let mut v = eval_closed(src, table, &up.rhs);
            if up.refine && !v.is_definite() {
                v = src.nullary(table, up.pred);
            }
            dst.set_nullary(table, up.pred, v);
        }
        Arity::Unary => {
            let [v] = up.args.as_slice() else {
                panic!("unary update needs exactly one formal arg");
            };
            let mut asg = Assignment::new();
            for u in src.nodes() {
                asg.bind(*v, u);
                let mut val = eval_memo(src, table, &up.rhs, &mut asg, memo);
                if up.refine && !val.is_definite() {
                    val = src.unary(table, up.pred, u);
                }
                dst.set_unary(table, up.pred, u, val);
            }
        }
        Arity::Binary => {
            let [v, w] = up.args.as_slice() else {
                panic!("binary update needs exactly two formal args");
            };
            let mut asg = Assignment::new();
            for a in src.nodes() {
                for b in src.nodes() {
                    asg.bind(*v, a);
                    asg.bind(*w, b);
                    let val = eval_memo(src, table, &up.rhs, &mut asg, memo);
                    dst.set_binary(table, up.pred, a, b, val);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::focus::DEFAULT_FOCUS_LIMIT;
    use crate::pred::PredFlags;
    use crate::structure::NodeId;

    fn table() -> (PredTable, PredId, PredId, PredId) {
        let mut t = PredTable::new();
        let x = t.add_unary("x", PredFlags::reference_variable());
        let y = t.add_unary("y", PredFlags::reference_variable());
        let f = t.add_binary("f", PredFlags::reference_field());
        (t, x, y, f)
    }

    /// `x = new T()`: allocate, x points to the new node.
    fn alloc_action(t: &PredTable, x: PredId) -> Action {
        let v = Var(0);
        Action {
            name: "x = new T()".into(),
            new_node: Some(NewNodeSpec::default()),
            updates: vec![PredUpdate::unary(x, v, Formula::unary(t.isnew(), v))],
            ..Action::default()
        }
    }

    #[test]
    fn allocation_creates_marked_then_cleared_node() {
        let (t, x, _y, _f) = table();
        let s = Structure::new(&t);
        let out = apply(&alloc_action(&t, x), &s, &t, DEFAULT_FOCUS_LIMIT);
        assert_eq!(out.results.len(), 1);
        let post = &out.results[0];
        assert_eq!(post.node_count(), 1);
        let u = NodeId::from_index(0);
        assert_eq!(post.unary(&t, x, u), Kleene::True);
        assert_eq!(post.unary(&t, t.isnew(), u), Kleene::False);
        assert!(out.violations.is_empty());
    }

    #[test]
    fn copy_assignment_is_strong_update() {
        let (t, x, y, _f) = table();
        // y = x where x points to u.
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let w = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::True);
        s.set_unary(&t, y, w, Kleene::True);
        let v = Var(0);
        let action = Action {
            name: "y = x".into(),
            updates: vec![PredUpdate::unary(y, v, Formula::unary(x, v))],
            ..Action::default()
        };
        let out = apply(&action, &s, &t, DEFAULT_FOCUS_LIMIT);
        assert_eq!(out.results.len(), 1);
        let post = &out.results[0];
        assert_eq!(post.unary(&t, y, u), Kleene::True);
        assert_eq!(post.unary(&t, y, w), Kleene::False, "old target dropped");
    }

    #[test]
    fn updates_are_simultaneous_over_pre_state() {
        let (t, x, y, _f) = table();
        // swap: x := y, y := x — must read both from the pre-state.
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let w = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::True);
        s.set_unary(&t, y, w, Kleene::True);
        let v = Var(0);
        let action = Action {
            name: "swap".into(),
            updates: vec![
                PredUpdate::unary(x, v, Formula::unary(y, v)),
                PredUpdate::unary(y, v, Formula::unary(x, v)),
            ],
            ..Action::default()
        };
        let post = &apply(&action, &s, &t, DEFAULT_FOCUS_LIMIT).results[0];
        assert_eq!(post.unary(&t, x, w), Kleene::True);
        assert_eq!(post.unary(&t, y, u), Kleene::True);
    }

    #[test]
    fn derived_updates_see_post_state() {
        let (t, x, y, _f) = table();
        // core: x := y; derived: d := x  (must observe the new x).
        let mut t = t;
        let d = t.add_unary("d", PredFlags::default());
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        s.set_unary(&t, y, u, Kleene::True);
        let v = Var(0);
        let action = Action {
            name: "derived".into(),
            updates: vec![PredUpdate::unary(x, v, Formula::unary(y, v))],
            derived: vec![PredUpdate::unary(d, v, Formula::unary(x, v))],
            ..Action::default()
        };
        let post = &apply(&action, &s, &t, DEFAULT_FOCUS_LIMIT).results[0];
        assert_eq!(post.unary(&t, d, u), Kleene::True);
    }

    #[test]
    fn assume_filters_definitely_false() {
        let (t, x, _y, _f) = table();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::False);
        let v = Var(0);
        let action = Action {
            name: "assume exists x".into(),
            assume: Some(Formula::exists(v, Formula::unary(x, v))),
            ..Action::default()
        };
        let out = apply(&action, &s, &t, DEFAULT_FOCUS_LIMIT);
        assert!(out.results.is_empty());
    }

    #[test]
    fn assume_with_focus_refines_unknown() {
        let (t, x, _y, _f) = table();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::Unknown);
        let v = Var(0);
        let action = Action {
            name: "assume x != null".into(),
            focus: vec![FocusSpec::Unary(x)],
            assume: Some(Formula::exists(v, Formula::unary(x, v))),
            ..Action::default()
        };
        let out = apply(&action, &s, &t, DEFAULT_FOCUS_LIMIT);
        // Only the variant where x(u)=1 survives.
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].unary(&t, x, u), Kleene::True);
    }

    #[test]
    fn violated_check_is_reported_with_value() {
        let (t, x, _y, _f) = table();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::Unknown);
        let v = Var(0);
        let action = Action {
            name: "requires x".into(),
            checks: vec![Check {
                cond: Formula::exists(v, Formula::unary(x, v)),
                guard: None,
                label: "x must be set".into(),
            }],
            ..Action::default()
        };
        let out = apply(&action, &s, &t, DEFAULT_FOCUS_LIMIT);
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].value, Kleene::Unknown);
        assert_eq!(out.violations[0].label, "x must be set");
    }

    #[test]
    fn guarded_check_skipped_when_guard_false() {
        let (t, x, y, _f) = table();
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::False); // condition would fail
        s.set_unary(&t, y, u, Kleene::False); // but guard is definitely false
        let v = Var(0);
        let action = Action {
            name: "guarded requires".into(),
            checks: vec![Check {
                cond: Formula::exists(v, Formula::unary(x, v)),
                guard: Some(Formula::exists(v, Formula::unary(y, v))),
                label: "guarded".into(),
            }],
            ..Action::default()
        };
        let out = apply(&action, &s, &t, DEFAULT_FOCUS_LIMIT);
        assert!(out.violations.is_empty());
    }

    #[test]
    fn field_update_via_formula() {
        let (t, x, y, f) = table();
        // x.f = y  ==>  f'(a,b) = (f(a,b) ∧ ¬x(a)) ∨ (x(a) ∧ y(b))
        let mut s = Structure::new(&t);
        let u = s.add_node(&t);
        let w = s.add_node(&t);
        let old = s.add_node(&t);
        s.set_unary(&t, x, u, Kleene::True);
        s.set_unary(&t, y, w, Kleene::True);
        s.set_binary(&t, f, u, old, Kleene::True);
        let (a, b) = (Var(0), Var(1));
        let rhs = Formula::binary(f, a, b)
            .and(Formula::unary(x, a).not())
            .or(Formula::unary(x, a).and(Formula::unary(y, b)));
        let action = Action {
            name: "x.f = y".into(),
            updates: vec![PredUpdate::binary(f, a, b, rhs)],
            ..Action::default()
        };
        let post = &apply(&action, &s, &t, DEFAULT_FOCUS_LIMIT).results[0];
        assert_eq!(post.binary(&t, f, u, w), Kleene::True);
        assert_eq!(post.binary(&t, f, u, old), Kleene::False, "strong update");
    }

    #[test]
    fn identity_action_detection() {
        let a = Action::named("skip");
        assert!(a.is_identity());
        let (t, x, ..) = table();
        let _ = t;
        let mut b = Action::named("not-skip");
        b.updates.push(PredUpdate::unary(x, Var(0), Formula::ff()));
        assert!(!b.is_identity());
    }
}
