//! Rendering of structures as text and Graphviz DOT.
//!
//! The renderings mirror the paper's figures: each individual is a node
//! annotated with the unary predicates that hold (or may hold) on it, summary
//! nodes get a double border, definite edges are solid and `1/2` edges are
//! dashed (Figures 2, 5, 7).

use std::fmt::Write as _;

use crate::kleene::Kleene;
use crate::pred::{Arity, PredTable};
use crate::structure::Structure;

/// Renders a structure as indented text.
///
/// Nodes are listed with their non-`False` unary predicates; then edges, then
/// nullary predicates. The format is stable, making it usable in golden
/// tests.
pub fn to_text(s: &Structure, table: &PredTable) -> String {
    let mut out = String::new();
    let isnew = table.isnew();
    writeln!(out, "structure ({} nodes)", s.node_count()).unwrap();
    for u in s.nodes() {
        let mut props: Vec<String> = Vec::new();
        for p in table.iter_arity(Arity::Unary) {
            if p == table.sm() || p == isnew {
                continue;
            }
            match s.unary(table, p, u) {
                Kleene::True => props.push(table.name(p).to_owned()),
                Kleene::Unknown => props.push(format!("{}=1/2", table.name(p))),
                Kleene::False => {}
            }
        }
        let marker = if s.is_summary(table, u) { "**" } else { "" };
        writeln!(out, "  {u}{marker}: [{}]", props.join(", ")).unwrap();
    }
    for p in table.iter_arity(Arity::Binary) {
        for a in s.nodes() {
            for b in s.nodes() {
                match s.binary(table, p, a, b) {
                    Kleene::True => writeln!(out, "  {a} -{}-> {b}", table.name(p)).unwrap(),
                    Kleene::Unknown => {
                        writeln!(out, "  {a} -{}?-> {b}", table.name(p)).unwrap()
                    }
                    Kleene::False => {}
                }
            }
        }
    }
    for p in table.iter_arity(Arity::Nullary) {
        let v = s.nullary(table, p);
        if v != Kleene::False {
            writeln!(out, "  {}() = {v}", table.name(p)).unwrap();
        }
    }
    out
}

/// Renders a structure as a Graphviz DOT digraph.
///
/// Summary nodes use `peripheries=2` (the paper's double-line boundary);
/// indefinite predicate values and edges are rendered dashed.
pub fn to_dot(s: &Structure, table: &PredTable, graph_name: &str) -> String {
    let mut out = String::new();
    writeln!(out, "digraph \"{graph_name}\" {{").unwrap();
    writeln!(out, "  node [shape=ellipse];").unwrap();
    for u in s.nodes() {
        let mut label: Vec<String> = vec![format!("{u}")];
        for p in table.iter_arity(Arity::Unary) {
            if p == table.sm() || p == table.isnew() {
                continue;
            }
            match s.unary(table, p, u) {
                Kleene::True => label.push(table.name(p).to_owned()),
                Kleene::Unknown => label.push(format!("{}=1/2", table.name(p))),
                Kleene::False => {}
            }
        }
        let peripheries = if s.is_summary(table, u) { 2 } else { 1 };
        writeln!(
            out,
            "  \"{u}\" [label=\"{}\", peripheries={peripheries}];",
            label.join("\\n")
        )
        .unwrap();
    }
    for p in table.iter_arity(Arity::Binary) {
        for a in s.nodes() {
            for b in s.nodes() {
                match s.binary(table, p, a, b) {
                    Kleene::True => writeln!(
                        out,
                        "  \"{a}\" -> \"{b}\" [label=\"{}\"];",
                        table.name(p)
                    )
                    .unwrap(),
                    Kleene::Unknown => writeln!(
                        out,
                        "  \"{a}\" -> \"{b}\" [label=\"{}\", style=dashed];",
                        table.name(p)
                    )
                    .unwrap(),
                    Kleene::False => {}
                }
            }
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::PredFlags;

    #[test]
    fn text_rendering_lists_nodes_edges() {
        let mut t = PredTable::new();
        let x = t.add_unary("x", PredFlags::reference_variable());
        let f = t.add_binary("f", PredFlags::reference_field());
        let mut s = Structure::new(&t);
        let a = s.add_node(&t);
        let b = s.add_node(&t);
        s.set_unary(&t, x, a, Kleene::True);
        s.set_binary(&t, f, a, b, Kleene::Unknown);
        s.set_summary(&t, b, true);
        let text = to_text(&s, &t);
        assert!(text.contains("u0: [x]"), "{text}");
        assert!(text.contains("u1**"), "{text}");
        assert!(text.contains("u0 -f?-> u1"), "{text}");
    }

    #[test]
    fn dot_rendering_is_valid_ish() {
        let mut t = PredTable::new();
        let x = t.add_unary("x", PredFlags::reference_variable());
        let f = t.add_binary("f", PredFlags::reference_field());
        let mut s = Structure::new(&t);
        let a = s.add_node(&t);
        let b = s.add_node(&t);
        s.set_unary(&t, x, a, Kleene::True);
        s.set_binary(&t, f, a, b, Kleene::True);
        s.set_summary(&t, b, true);
        let dot = to_dot(&s, &t, "g");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("peripheries=2"), "{dot}");
        assert!(dot.contains("->"), "{dot}");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn nullary_values_rendered() {
        let mut t = PredTable::new();
        let g = t.add_nullary("closedFlag", PredFlags::default());
        let mut s = Structure::new(&t);
        s.set_nullary(&t, g, Kleene::Unknown);
        let text = to_text(&s, &t);
        assert!(text.contains("closedFlag() = 1/2"), "{text}");
    }
}
