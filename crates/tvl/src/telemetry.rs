//! Engine observability: phase timings, counters, and typed events.
//!
//! The verification engine reports *what* it concluded through
//! `RunResult`/`VerificationReport`; this module is the seam through which it
//! reports *where the effort went*. Three layers:
//!
//! 1. **[`RunMetrics`]** — a per-run accumulator of per-phase invocation
//!    counts and (optionally) wall-clock nanoseconds, plus scalar
//!    [`Counter`]s and per-location structure counts. Each engine run (and
//!    therefore each worker thread of the parallel subproblem scheduler)
//!    owns its accumulator exclusively, so collection is lock-free; the mode
//!    drivers merge accumulators deterministically in allocation-site order.
//! 2. **[`Event`]** — the typed event vocabulary derived from merged
//!    metrics: subproblem start/finish with site ids, per-phase samples,
//!    counter samples, per-location structure counts, budget exhaustion and
//!    cancellation.
//! 3. **[`EventSink`]** — the consumer contract. [`NullSink`] discards
//!    everything and reports itself disabled (callers skip event
//!    construction entirely, so an unobserved run pays nothing for this
//!    layer); [`MetricsSink`] aggregates events back into totals;
//!    [`TraceWriter`] serializes each event as one NDJSON line.
//!
//! Instrumentation is **observation-only**: no sink and no metrics level may
//! change which structures the engine explores, in which order, or what it
//! reports. Phase *counts* are always collected (plain integer increments);
//! phase *durations* are only sampled when a run is created with
//! `RunMetrics::new(true)` (two `Instant` reads per phase application), so
//! the default configuration never touches the clock in the hot loop.

use std::fmt;
use std::io::{self, Write};
use std::time::{Duration, Instant};

/// The engine phases broken out by the observability layer (the cost
/// centers of the TVLA-style analysis loop).
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Materialization: `focus_all` over an action's focus specs.
    Focus,
    /// Constraint sharpening: `coerce` on focused variants and post-states.
    Coerce,
    /// Action update: allocation + core + derived predicate updates.
    Update,
    /// Canonical abstraction: `blur` + `canonical_key` of post-states.
    Canon,
    /// Structure merging: merge-key computation and location joins.
    Merge,
}

impl Phase {
    /// Every phase, in fixed reporting order.
    pub const ALL: [Phase; 5] = [
        Phase::Focus,
        Phase::Coerce,
        Phase::Update,
        Phase::Canon,
        Phase::Merge,
    ];

    /// Stable lower-case label used in traces and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Focus => "focus",
            Phase::Coerce => "coerce",
            Phase::Update => "update",
            Phase::Canon => "canon",
            Phase::Merge => "merge",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Focus => 0,
            Phase::Coerce => 1,
            Phase::Update => 2,
            Phase::Canon => 3,
            Phase::Merge => 4,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Scalar counters collected alongside phase timings.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Interner probes answered from the arena (structure already known).
    InternHits,
    /// Interner probes that materialized a new arena entry.
    InternMisses,
    /// Structures pushed onto the engine worklist.
    WorklistPushes,
    /// Peak worklist depth (merged across runs by `max`, not `+`).
    WorklistPeakDepth,
    /// Structure variants produced by focus (materialization fan-out).
    FocusVariants,
    /// Focused variants discarded as infeasible by coerce.
    CoerceInfeasible,
    /// Post-states produced by action application.
    PostStructures,
    /// Non-trivial location joins (two distinct structures merged).
    MergeJoins,
    /// Runs that exhausted their own visit/structure budget.
    BudgetExhausted,
    /// Runs aborted by a sibling subproblem's cancellation flag.
    Cancelled,
    /// Subproblems skipped entirely because the static pre-analysis proved
    /// their requires-checks safe under the coarse baseline abstraction.
    SubproblemsPruned,
    /// Action applications answered from the exact transfer cache (the full
    /// focus → coerce → update → canon pipeline was skipped).
    TransferCacheHits,
    /// Action applications that computed the transfer pipeline and populated
    /// the cache. `hits + misses` equals the action applications that reached
    /// the transfer step (a run that aborts mid-visit loses at most one).
    TransferCacheMisses,
    /// Transfer-cache entries actually discarded by capacity eviction
    /// (generational: a full young generation discards the old one; see
    /// `EngineConfig::transfer_cache_capacity` in `hetsep-core`).
    TransferCacheEvictions,
    /// Action applications answered from a *cross-job* shared transfer store
    /// (a persisted corpus cache; see `hetsep-core`'s `jobcache` module).
    /// Counted instead of — not in addition to — `TransferCacheMisses`, so a
    /// warm corpus run reports strictly fewer misses than a cold one.
    SharedCacheHits,
    /// Shared-store probes that found no entry and fell through to the
    /// transfer pipeline (the computed result is recorded for future jobs).
    SharedCacheMisses,
    /// May-share heap components found by the flow-sensitive preanalysis
    /// (a verification-wide figure stamped on every separation subproblem,
    /// so it merges by `max`, not `+`).
    PreanalysisComponents,
    /// Subproblems pruned that the v1 baseline pre-pass (flow-insensitive
    /// points-to) proved safe.
    PreanalysisPrunedBaseline,
    /// Subproblems pruned that the v2 flow-sensitive product analysis
    /// proved safe (overlaps with the baseline count; a strictly-flow win
    /// is `flow − baseline∩flow`).
    PreanalysisPrunedFlow,
    /// Structure-count upper bound predicted for the subproblem's may-share
    /// component (sums across rows to the predicted cost of the family).
    PreanalysisEstimatedStructures,
    /// Worklist batches (all queued structures of one CFG location at equal
    /// priority, drained together) holding two or more structures — the
    /// batches whose transfers the engine *can* fan out over the
    /// intra-subproblem worker pool. Counted from the drained batch size, so
    /// the value is identical whatever `intra_threads` is configured;
    /// `IntraBatchItems / IntraBatches` is the mean exploitable width.
    IntraBatches,
    /// Structures in those multi-structure batches (see [`Counter::IntraBatches`]).
    IntraBatchItems,
    /// Call-region evaluations: structures arriving at a spliced procedure's
    /// entry node while summary memoization is active. Every evaluation is
    /// answered by a summary hit or computed as a miss, so
    /// `SummaryHits + SummaryMisses == CallEvaluations`.
    CallEvaluations,
    /// Call-region evaluations replayed from a memoized per-procedure
    /// summary (in-run memo or shared store) instead of re-draining the
    /// callee body.
    SummaryHits,
    /// Call-region evaluations that drained the callee body as a nested
    /// subproblem and recorded the summary for future evaluations.
    SummaryMisses,
    /// Summary hits answered by a *cross-job* shared summary store (a
    /// persisted section beside the transfer store; see `hetsep-core`'s
    /// `summary` module). A subset of `SummaryHits`, so a warm run reports
    /// strictly fewer `SummaryMisses` than a cold one.
    SharedSummaryHits,
}

impl Counter {
    /// Every counter, in fixed reporting order.
    pub const ALL: [Counter; 26] = [
        Counter::InternHits,
        Counter::InternMisses,
        Counter::WorklistPushes,
        Counter::WorklistPeakDepth,
        Counter::FocusVariants,
        Counter::CoerceInfeasible,
        Counter::PostStructures,
        Counter::MergeJoins,
        Counter::BudgetExhausted,
        Counter::Cancelled,
        Counter::SubproblemsPruned,
        Counter::TransferCacheHits,
        Counter::TransferCacheMisses,
        Counter::TransferCacheEvictions,
        Counter::SharedCacheHits,
        Counter::SharedCacheMisses,
        Counter::PreanalysisComponents,
        Counter::PreanalysisPrunedBaseline,
        Counter::PreanalysisPrunedFlow,
        Counter::PreanalysisEstimatedStructures,
        Counter::IntraBatches,
        Counter::IntraBatchItems,
        Counter::CallEvaluations,
        Counter::SummaryHits,
        Counter::SummaryMisses,
        Counter::SharedSummaryHits,
    ];

    /// Stable snake_case label used in traces and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Counter::InternHits => "intern_hits",
            Counter::InternMisses => "intern_misses",
            Counter::WorklistPushes => "worklist_pushes",
            Counter::WorklistPeakDepth => "worklist_peak_depth",
            Counter::FocusVariants => "focus_variants",
            Counter::CoerceInfeasible => "coerce_infeasible",
            Counter::PostStructures => "post_structures",
            Counter::MergeJoins => "merge_joins",
            Counter::BudgetExhausted => "budget_exhausted",
            Counter::Cancelled => "cancelled",
            Counter::SubproblemsPruned => "subproblems_pruned",
            Counter::TransferCacheHits => "transfer_cache_hits",
            Counter::TransferCacheMisses => "transfer_cache_misses",
            Counter::TransferCacheEvictions => "transfer_cache_evictions",
            Counter::SharedCacheHits => "shared_cache_hits",
            Counter::SharedCacheMisses => "shared_cache_misses",
            Counter::PreanalysisComponents => "preanalysis_components",
            Counter::PreanalysisPrunedBaseline => "preanalysis_pruned_baseline",
            Counter::PreanalysisPrunedFlow => "preanalysis_pruned_flow",
            Counter::PreanalysisEstimatedStructures => "preanalysis_estimated_structures",
            Counter::IntraBatches => "intra_batches",
            Counter::IntraBatchItems => "intra_batch_items",
            Counter::CallEvaluations => "call_evaluations",
            Counter::SummaryHits => "summary_hits",
            Counter::SummaryMisses => "summary_misses",
            Counter::SharedSummaryHits => "shared_summary_hits",
        }
    }

    /// Whether merging two runs' values takes the maximum instead of the
    /// sum (true for high-water marks like the worklist depth).
    pub fn merges_by_max(self) -> bool {
        matches!(
            self,
            Counter::WorklistPeakDepth | Counter::PreanalysisComponents
        )
    }

    fn index(self) -> usize {
        match self {
            Counter::InternHits => 0,
            Counter::InternMisses => 1,
            Counter::WorklistPushes => 2,
            Counter::WorklistPeakDepth => 3,
            Counter::FocusVariants => 4,
            Counter::CoerceInfeasible => 5,
            Counter::PostStructures => 6,
            Counter::MergeJoins => 7,
            Counter::BudgetExhausted => 8,
            Counter::Cancelled => 9,
            Counter::SubproblemsPruned => 10,
            Counter::TransferCacheHits => 11,
            Counter::TransferCacheMisses => 12,
            Counter::TransferCacheEvictions => 13,
            Counter::SharedCacheHits => 14,
            Counter::SharedCacheMisses => 15,
            Counter::PreanalysisComponents => 16,
            Counter::PreanalysisPrunedBaseline => 17,
            Counter::PreanalysisPrunedFlow => 18,
            Counter::PreanalysisEstimatedStructures => 19,
            Counter::IntraBatches => 20,
            Counter::IntraBatchItems => 21,
            Counter::CallEvaluations => 22,
            Counter::SummaryHits => 23,
            Counter::SummaryMisses => 24,
            Counter::SharedSummaryHits => 25,
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Invocation count and accumulated wall time of one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Number of phase applications.
    pub count: u64,
    /// Accumulated wall-clock nanoseconds (0 unless timing was enabled).
    pub nanos: u64,
}

/// Per-phase invocation counts and durations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    stats: [PhaseStats; Phase::ALL.len()],
}

impl PhaseTimings {
    /// Adds `count` applications totalling `nanos` to `phase`.
    pub fn add(&mut self, phase: Phase, count: u64, nanos: u64) {
        let s = &mut self.stats[phase.index()];
        s.count += count;
        s.nanos += nanos;
    }

    /// The stats of one phase.
    pub fn get(&self, phase: Phase) -> PhaseStats {
        self.stats[phase.index()]
    }

    /// Accumulated duration of one phase.
    pub fn duration(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.get(phase).nanos)
    }

    /// Sums another run's timings into this one.
    pub fn merge(&mut self, other: &PhaseTimings) {
        for p in Phase::ALL {
            let o = other.get(p);
            self.add(p, o.count, o.nanos);
        }
    }

    /// Whether no phase was ever applied.
    pub fn is_zero(&self) -> bool {
        self.stats.iter().all(|s| s.count == 0 && s.nanos == 0)
    }
}

/// Scalar counter values, indexable by [`Counter`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    values: [u64; Counter::ALL.len()],
}

impl Counters {
    /// Adds `v` to `counter`.
    pub fn add(&mut self, counter: Counter, v: u64) {
        self.values[counter.index()] += v;
    }

    /// Raises `counter` to at least `v` (for high-water marks).
    pub fn raise(&mut self, counter: Counter, v: u64) {
        let slot = &mut self.values[counter.index()];
        *slot = (*slot).max(v);
    }

    /// Current value of `counter`.
    pub fn get(&self, counter: Counter) -> u64 {
        self.values[counter.index()]
    }

    /// Merges another run's counters: sums, except high-water marks which
    /// take the maximum (see [`Counter::merges_by_max`]).
    pub fn merge(&mut self, other: &Counters) {
        for c in Counter::ALL {
            if c.merges_by_max() {
                self.raise(c, other.get(c));
            } else {
                self.add(c, other.get(c));
            }
        }
    }
}

/// The metrics accumulated by one engine run (one subproblem, one worker).
///
/// Counts are always collected; durations only when constructed with
/// `RunMetrics::new(true)`. Aggregates across runs are formed with
/// [`RunMetrics::merge`], which is applied in deterministic allocation-site
/// order by the mode drivers — so a parallel verification produces exactly
/// the metrics of a serial one (modulo wall-clock nanoseconds).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Per-phase invocation counts and durations.
    pub phases: PhaseTimings,
    /// Scalar counters.
    pub counters: Counters,
    /// Structures stored per CFG location at the end of the run (empty in
    /// merged aggregates: location indices are not comparable across runs).
    pub per_location: Vec<u32>,
    timed: bool,
}

impl RunMetrics {
    /// Creates an accumulator; `timed` enables wall-clock phase sampling.
    pub fn new(timed: bool) -> RunMetrics {
        RunMetrics {
            timed,
            ..RunMetrics::default()
        }
    }

    /// An accumulator that counts but never reads the clock.
    pub fn disabled() -> RunMetrics {
        RunMetrics::default()
    }

    /// Whether wall-clock phase sampling is enabled.
    pub fn timed(&self) -> bool {
        self.timed
    }

    /// Runs `f` as one application of `phase`, sampling its duration when
    /// timing is enabled.
    #[inline]
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        if self.timed {
            let t0 = Instant::now();
            let r = f();
            self.phases
                .add(phase, 1, u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
            r
        } else {
            self.phases.add(phase, 1, 0);
            f()
        }
    }

    /// Merges another run's metrics (phase sums, counter sums/maxima).
    /// `per_location` is intentionally left untouched: location indices are
    /// only meaningful within one run.
    pub fn merge(&mut self, other: &RunMetrics) {
        self.phases.merge(&other.phases);
        self.counters.merge(&other.counters);
        self.timed |= other.timed;
    }
}

/// A typed observability event.
///
/// Events are derived from merged per-run metrics *after* subproblems
/// complete and are delivered in deterministic site order, so an event
/// stream is a reproducible record of a verification, not a live wire
/// format (wall-clock nanoseconds excepted).
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A subproblem (one engine run) begins. `site` is the allocation site
    /// the run was restricted to, if any.
    SubproblemStart {
        /// Zero-based subproblem index, in deterministic site order.
        index: usize,
        /// Restricting allocation site (`None` for whole-program runs).
        site: Option<usize>,
    },
    /// One phase's accumulated count/duration within a subproblem.
    PhaseSample {
        /// Subproblem index.
        index: usize,
        /// The phase.
        phase: Phase,
        /// Applications of the phase.
        count: u64,
        /// Accumulated nanoseconds (0 when timing was disabled).
        nanos: u64,
    },
    /// One counter's value within a subproblem.
    CounterSample {
        /// Subproblem index.
        index: usize,
        /// The counter.
        counter: Counter,
        /// Its value.
        value: u64,
    },
    /// Structures stored at one CFG location at the end of a subproblem.
    LocationStructures {
        /// Subproblem index.
        index: usize,
        /// CFG node index.
        location: usize,
        /// Structures stored there.
        structures: usize,
    },
    /// The subproblem exhausted its own visit/structure budget.
    BudgetExhausted {
        /// Subproblem index.
        index: usize,
        /// Action applications performed before giving up.
        visits: u64,
    },
    /// The subproblem was aborted by a sibling's cancellation flag.
    Cancelled {
        /// Subproblem index.
        index: usize,
        /// Action applications performed before aborting.
        visits: u64,
    },
    /// A subproblem finished (its summary row).
    SubproblemFinish {
        /// Subproblem index.
        index: usize,
        /// Restricting allocation site (`None` for whole-program runs).
        site: Option<usize>,
        /// Action applications performed.
        visits: u64,
        /// Peak structures stored.
        structures: usize,
        /// Per-line errors reported.
        errors: usize,
        /// Whether the run reached a fixpoint within budget.
        complete: bool,
    },
}

/// A consumer of observability [`Event`]s.
///
/// The contract: `record` must not panic on any event (including variants
/// added after `#[non_exhaustive]` growth), must tolerate events in any
/// order, and must not assume it sees a complete stream (a disabled sink
/// sees nothing). Implementations receive events after the verification's
/// subproblems complete, in deterministic site order.
pub trait EventSink {
    /// Whether the producer should construct and deliver events at all.
    /// `false` lets instrumented code skip event construction entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record(&mut self, event: &Event);
}

/// The disabled sink: reports `enabled() == false` and discards everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl EventSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &Event) {}
}

/// A sink that aggregates events back into verification-wide totals.
///
/// Aggregation is order-independent (sums and maxima), so serial and
/// parallel verifications that merge subproblems in site order produce
/// byte-identical `MetricsSink` states whenever timing is disabled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSink {
    phases: PhaseTimings,
    counters: Counters,
    subproblems: usize,
    finished: usize,
    total_visits: u64,
    total_errors: usize,
    budget_exhausted: usize,
    cancelled: usize,
}

impl MetricsSink {
    /// Creates an empty aggregator.
    pub fn new() -> MetricsSink {
        MetricsSink::default()
    }

    /// Aggregated per-phase counts/durations across all subproblems.
    pub fn phases(&self) -> &PhaseTimings {
        &self.phases
    }

    /// Aggregated counters across all subproblems.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Subproblems started.
    pub fn subproblems(&self) -> usize {
        self.subproblems
    }

    /// Subproblems finished.
    pub fn finished(&self) -> usize {
        self.finished
    }

    /// Total action applications across finished subproblems.
    pub fn total_visits(&self) -> u64 {
        self.total_visits
    }

    /// Total per-line errors across finished subproblems.
    pub fn total_errors(&self) -> usize {
        self.total_errors
    }

    /// Subproblems that exhausted their own budget.
    pub fn budget_exhausted(&self) -> usize {
        self.budget_exhausted
    }

    /// Subproblems aborted by a sibling's cancellation.
    pub fn cancelled(&self) -> usize {
        self.cancelled
    }
}

impl EventSink for MetricsSink {
    fn record(&mut self, event: &Event) {
        match event {
            Event::SubproblemStart { .. } => self.subproblems += 1,
            Event::PhaseSample {
                phase, count, nanos, ..
            } => self.phases.add(*phase, *count, *nanos),
            Event::CounterSample { counter, value, .. } => {
                if counter.merges_by_max() {
                    self.counters.raise(*counter, *value);
                } else {
                    self.counters.add(*counter, *value);
                }
            }
            Event::LocationStructures { .. } => {}
            Event::BudgetExhausted { .. } => self.budget_exhausted += 1,
            Event::Cancelled { .. } => self.cancelled += 1,
            Event::SubproblemFinish { visits, errors, .. } => {
                self.finished += 1;
                self.total_visits += visits;
                self.total_errors += errors;
            }
            // Forward compatibility: tolerate unknown events.
            #[allow(unreachable_patterns)]
            _ => {}
        }
    }
}

/// A sink that serializes every event as one NDJSON line.
///
/// The schema is covered by a golden-file test
/// (`crates/tvl/tests/trace_schema.rs`); extend it additively — downstream
/// tooling greps these lines. All emitted strings are fixed identifiers
/// ([`Phase::label`], [`Counter::label`]), so no JSON escaping is needed.
/// I/O errors are sticky: the first one stops further writes and is
/// surfaced by [`TraceWriter::finish`].
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    error: Option<io::Error>,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps a writer (pass a `BufWriter` for file targets).
    pub fn new(out: W) -> TraceWriter<W> {
        TraceWriter { out, error: None }
    }

    /// Flushes and returns the underlying writer, surfacing the first I/O
    /// error encountered while recording.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.out.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }
}

/// Renders one event as its NDJSON line (without the trailing newline).
pub fn event_to_json(event: &Event) -> String {
    fn opt(site: Option<usize>) -> String {
        site.map_or_else(|| "null".to_owned(), |s| s.to_string())
    }
    match event {
        Event::SubproblemStart { index, site } => format!(
            "{{\"event\":\"subproblem_start\",\"subproblem\":{index},\"site\":{}}}",
            opt(*site)
        ),
        Event::PhaseSample {
            index,
            phase,
            count,
            nanos,
        } => format!(
            "{{\"event\":\"phase\",\"subproblem\":{index},\"phase\":\"{}\",\
             \"count\":{count},\"nanos\":{nanos}}}",
            phase.label()
        ),
        Event::CounterSample {
            index,
            counter,
            value,
        } => format!(
            "{{\"event\":\"counter\",\"subproblem\":{index},\"counter\":\"{}\",\
             \"value\":{value}}}",
            counter.label()
        ),
        Event::LocationStructures {
            index,
            location,
            structures,
        } => format!(
            "{{\"event\":\"location_structures\",\"subproblem\":{index},\
             \"location\":{location},\"structures\":{structures}}}"
        ),
        Event::BudgetExhausted { index, visits } => format!(
            "{{\"event\":\"budget_exhausted\",\"subproblem\":{index},\"visits\":{visits}}}"
        ),
        Event::Cancelled { index, visits } => {
            format!("{{\"event\":\"cancelled\",\"subproblem\":{index},\"visits\":{visits}}}")
        }
        Event::SubproblemFinish {
            index,
            site,
            visits,
            structures,
            errors,
            complete,
        } => format!(
            "{{\"event\":\"subproblem_finish\",\"subproblem\":{index},\"site\":{},\
             \"visits\":{visits},\"structures\":{structures},\"errors\":{errors},\
             \"complete\":{complete}}}",
            opt(*site)
        ),
        // Forward compatibility: unknown events serialize to a marker line
        // instead of breaking the stream.
        #[allow(unreachable_patterns)]
        _ => "{\"event\":\"unknown\"}".to_owned(),
    }
}

impl<W: Write> EventSink for TraceWriter<W> {
    fn record(&mut self, event: &Event) {
        let mut line = event_to_json(event);
        line.push('\n');
        self.write_line(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_timings_add_and_merge() {
        let mut a = PhaseTimings::default();
        a.add(Phase::Focus, 3, 300);
        a.add(Phase::Canon, 1, 50);
        let mut b = PhaseTimings::default();
        b.add(Phase::Focus, 2, 100);
        a.merge(&b);
        assert_eq!(a.get(Phase::Focus), PhaseStats { count: 5, nanos: 400 });
        assert_eq!(a.get(Phase::Canon), PhaseStats { count: 1, nanos: 50 });
        assert_eq!(a.get(Phase::Merge), PhaseStats::default());
        assert!(!a.is_zero());
        assert!(PhaseTimings::default().is_zero());
    }

    #[test]
    fn counters_merge_sums_except_peaks() {
        let mut a = Counters::default();
        a.add(Counter::InternHits, 10);
        a.raise(Counter::WorklistPeakDepth, 7);
        let mut b = Counters::default();
        b.add(Counter::InternHits, 5);
        b.raise(Counter::WorklistPeakDepth, 3);
        a.merge(&b);
        assert_eq!(a.get(Counter::InternHits), 15, "sums");
        assert_eq!(a.get(Counter::WorklistPeakDepth), 7, "max, not sum");
    }

    #[test]
    fn untimed_metrics_count_but_never_sample() {
        let mut m = RunMetrics::disabled();
        assert!(!m.timed());
        let v = m.time(Phase::Update, || 42);
        assert_eq!(v, 42);
        assert_eq!(m.phases.get(Phase::Update), PhaseStats { count: 1, nanos: 0 });
    }

    #[test]
    fn timed_metrics_sample_durations() {
        let mut m = RunMetrics::new(true);
        m.time(Phase::Focus, || std::thread::sleep(Duration::from_millis(2)));
        let s = m.phases.get(Phase::Focus);
        assert_eq!(s.count, 1);
        assert!(s.nanos >= 1_000_000, "slept 2ms, sampled {}ns", s.nanos);
    }

    #[test]
    fn run_metrics_merge_is_order_independent() {
        let mk = |hits: u64, depth: u64, focus: u64| {
            let mut m = RunMetrics::disabled();
            m.counters.add(Counter::InternHits, hits);
            m.counters.raise(Counter::WorklistPeakDepth, depth);
            m.phases.add(Phase::Focus, focus, 0);
            m
        };
        let (a, b, c) = (mk(1, 9, 2), mk(10, 4, 3), mk(100, 6, 5));
        let mut left = RunMetrics::disabled();
        for m in [&a, &b, &c] {
            left.merge(m);
        }
        let mut right = RunMetrics::disabled();
        for m in [&c, &a, &b] {
            right.merge(m);
        }
        assert_eq!(left, right);
        assert_eq!(left.counters.get(Counter::InternHits), 111);
        assert_eq!(left.counters.get(Counter::WorklistPeakDepth), 9);
        assert_eq!(left.phases.get(Phase::Focus).count, 10);
    }

    #[test]
    fn metrics_sink_aggregates_events() {
        let mut sink = MetricsSink::new();
        assert!(sink.enabled());
        for (ix, site) in [(0, Some(3)), (1, Some(5))] {
            sink.record(&Event::SubproblemStart { index: ix, site });
            sink.record(&Event::PhaseSample {
                index: ix,
                phase: Phase::Coerce,
                count: 4,
                nanos: 40,
            });
            sink.record(&Event::CounterSample {
                index: ix,
                counter: Counter::WorklistPeakDepth,
                value: 10 + ix as u64,
            });
            sink.record(&Event::CounterSample {
                index: ix,
                counter: Counter::InternMisses,
                value: 2,
            });
            sink.record(&Event::SubproblemFinish {
                index: ix,
                site,
                visits: 100,
                structures: 7,
                errors: ix,
                complete: true,
            });
        }
        sink.record(&Event::BudgetExhausted { index: 1, visits: 100 });
        assert_eq!(sink.subproblems(), 2);
        assert_eq!(sink.finished(), 2);
        assert_eq!(sink.total_visits(), 200);
        assert_eq!(sink.total_errors(), 1);
        assert_eq!(sink.budget_exhausted(), 1);
        assert_eq!(sink.cancelled(), 0);
        assert_eq!(sink.phases().get(Phase::Coerce), PhaseStats { count: 8, nanos: 80 });
        assert_eq!(sink.counters().get(Counter::WorklistPeakDepth), 11, "peak is max");
        assert_eq!(sink.counters().get(Counter::InternMisses), 4, "misses sum");
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        sink.record(&Event::SubproblemStart { index: 0, site: None });
    }

    #[test]
    fn trace_writer_emits_one_line_per_event() {
        let mut w = TraceWriter::new(Vec::new());
        w.record(&Event::SubproblemStart { index: 0, site: None });
        w.record(&Event::SubproblemFinish {
            index: 0,
            site: None,
            visits: 12,
            structures: 3,
            errors: 0,
            complete: true,
        });
        let bytes = w.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"event\":\"subproblem_start\",\"subproblem\":0,\"site\":null}"
        );
        assert!(lines[1].starts_with("{\"event\":\"subproblem_finish\""));
        assert!(lines[1].ends_with("\"complete\":true}"));
    }

    #[test]
    fn labels_are_stable_identifiers() {
        for p in Phase::ALL {
            assert!(p.label().chars().all(|c| c.is_ascii_lowercase()));
        }
        for c in Counter::ALL {
            assert!(c
                .label()
                .chars()
                .all(|ch| ch.is_ascii_lowercase() || ch == '_'));
        }
    }
}
