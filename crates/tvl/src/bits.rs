//! Word-parallel Kleene bitplane primitives.
//!
//! A vector of [`Kleene`] values is stored as *two bitplanes*:
//! a `true`-plane `t` and a `half`-plane `h`, one bit per element, packed
//! into `u64` words. The encoding per lane is
//!
//! | value     | `t` | `h` |
//! |-----------|-----|-----|
//! | `False`   | 0   | 0   |
//! | `Unknown` | 0   | 1   |
//! | `True`    | 1   | 0   |
//!
//! with the invariant `t & h == 0` (a lane is never both). Under this
//! encoding every Kleene connective becomes a constant number of boolean
//! word operations applied to 64 lanes at once:
//!
//! | op            | `t'`                | `h'`                              |
//! |---------------|---------------------|-----------------------------------|
//! | `a ∧ b`       | `t1 & t2`           | `(t1\|h1) & (t2\|h2) & !(t1&t2)`  |
//! | `a ∨ b`       | `t1 \| t2`          | `(h1\|h2) & !(t1\|t2)`            |
//! | `¬a`          | `valid & !(t\|h)`   | `h`                               |
//! | `a ⊔ b` (join)| `t1 & t2`           | `(t1^t2) \| h1 \| h2`             |
//!
//! These identities are proven exhaustively against the scalar
//! [`Kleene`] operations — for all 3×3 input pairs in all 64
//! lanes — by the property tests in `tests/properties.rs` and the unit tests
//! below.
//!
//! Rows longer than 64 lanes span multiple words ([`words_for`]); the bits of
//! the last word past the logical length are *padding* and must always be
//! zero (the stride/padding invariant). Producers that could set padding
//! bits (notably negation, whose `valid` mask exists exactly for this) mask
//! with [`tail_mask`].

use crate::kleene::Kleene;

/// Number of lanes per storage word.
pub const WORD_BITS: usize = 64;

/// Number of `u64` words needed to hold `n` lanes.
#[inline]
pub fn words_for(n: usize) -> usize {
    n.div_ceil(WORD_BITS)
}

/// Mask of the valid (non-padding) bits of the *last* word of an `n`-lane
/// row. All earlier words are fully valid (`!0`). `n` must not be zero
/// modulo full rows: for `n % 64 == 0` (including `n == 0`) every word is
/// full and the mask is `!0`.
#[inline]
pub fn tail_mask(n: usize) -> u64 {
    let rem = n % WORD_BITS;
    if rem == 0 {
        !0
    } else {
        (1u64 << rem) - 1
    }
}

/// Valid-lane mask of word `w` in an `n`-lane row of `words_for(n)` words.
#[inline]
pub fn word_mask(n: usize, w: usize) -> u64 {
    if (w + 1) * WORD_BITS <= n {
        !0
    } else {
        tail_mask(n)
    }
}

/// Splits a lane index into its word index and in-word bit offset.
#[inline]
pub fn lane(ix: usize) -> (usize, u32) {
    (ix / WORD_BITS, (ix % WORD_BITS) as u32)
}

/// Reads the Kleene value of one lane from a plane pair.
#[inline]
pub fn get_lane(t: &[u64], h: &[u64], ix: usize) -> Kleene {
    let (w, b) = lane(ix);
    Kleene::from_bits((t[w] >> b) & 1 != 0, (h[w] >> b) & 1 != 0)
}

/// Writes the Kleene value of one lane into a plane pair.
#[inline]
pub fn set_lane(t: &mut [u64], h: &mut [u64], ix: usize, v: Kleene) {
    let (w, b) = lane(ix);
    let bit = 1u64 << b;
    let (tb, hb) = v.to_bits();
    if tb {
        t[w] |= bit;
    } else {
        t[w] &= !bit;
    }
    if hb {
        h[w] |= bit;
    } else {
        h[w] &= !bit;
    }
}

/// 64-lane Kleene conjunction.
#[inline]
pub fn and_word(t1: u64, h1: u64, t2: u64, h2: u64) -> (u64, u64) {
    let t = t1 & t2;
    (t, (t1 | h1) & (t2 | h2) & !t)
}

/// 64-lane Kleene disjunction.
#[inline]
pub fn or_word(t1: u64, h1: u64, t2: u64, h2: u64) -> (u64, u64) {
    let t = t1 | t2;
    (t, (h1 | h2) & !t)
}

/// 64-lane Kleene negation. `valid` masks the lanes that exist; padding
/// lanes stay zero.
#[inline]
pub fn not_word(t: u64, h: u64, valid: u64) -> (u64, u64) {
    (valid & !(t | h), h)
}

/// 64-lane information-order join (`x ⊔ x = x`, distinct values → `Unknown`).
#[inline]
pub fn join_word(t1: u64, h1: u64, t2: u64, h2: u64) -> (u64, u64) {
    (t1 & t2, (t1 ^ t2) | h1 | h2)
}

/// Lanes of `valid` where `a ⊑ b` does **not** hold (`b` is neither equal to
/// `a` nor `Unknown`). A zero result on every word of a row means the whole
/// row is information-ordered.
#[inline]
pub fn le_info_violations(ta: u64, ha: u64, tb: u64, hb: u64, valid: u64) -> u64 {
    let eq = !(ta ^ tb) & !(ha ^ hb);
    valid & !(eq | hb)
}

/// Total number of set bits in a word slice.
#[inline]
pub fn count_set(words: &[u64]) -> u32 {
    words.iter().map(|w| w.count_ones()).sum()
}

/// Whether any bit is set in a word slice.
#[inline]
pub fn any_set(words: &[u64]) -> bool {
    words.iter().any(|&w| w != 0)
}

/// Index of the lowest set bit across a word slice, if any.
#[inline]
pub fn first_set(words: &[u64]) -> Option<usize> {
    for (wi, &w) in words.iter().enumerate() {
        if w != 0 {
            return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
        }
    }
    None
}

/// Calls `f` with the index of every set bit, in ascending order
/// (`trailing_zeros` iteration).
#[inline]
pub fn for_each_set(words: &[u64], mut f: impl FnMut(usize)) {
    for (wi, &word) in words.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            f(wi * WORD_BITS + w.trailing_zeros() as usize);
            w &= w - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a single-word plane pair holding `v` in lane `b`.
    fn lane_planes(v: Kleene, b: u32) -> (u64, u64) {
        let (t, h) = v.to_bits();
        ((t as u64) << b, (h as u64) << b)
    }

    fn read_lane(t: u64, h: u64, b: u32) -> Kleene {
        Kleene::from_bits((t >> b) & 1 != 0, (h >> b) & 1 != 0)
    }

    #[test]
    fn word_ops_match_scalar_in_every_lane() {
        for b in 0..64u32 {
            for a in Kleene::ALL {
                for c in Kleene::ALL {
                    let (t1, h1) = lane_planes(a, b);
                    let (t2, h2) = lane_planes(c, b);
                    let (t, h) = and_word(t1, h1, t2, h2);
                    assert_eq!(read_lane(t, h, b), a & c, "and lane {b}: {a} {c}");
                    assert_eq!(t & h, 0, "and: t/h invariant");
                    let (t, h) = or_word(t1, h1, t2, h2);
                    assert_eq!(read_lane(t, h, b), a | c, "or lane {b}: {a} {c}");
                    assert_eq!(t & h, 0, "or: t/h invariant");
                    let (t, h) = join_word(t1, h1, t2, h2);
                    assert_eq!(read_lane(t, h, b), a.join(c), "join lane {b}: {a} {c}");
                    assert_eq!(t & h, 0, "join: t/h invariant");
                }
                let (t1, h1) = lane_planes(a, b);
                let (t, h) = not_word(t1, h1, !0);
                assert_eq!(read_lane(t, h, b), !a, "not lane {b}: {a}");
            }
        }
    }

    #[test]
    fn le_info_violation_lanes_match_scalar() {
        for b in 0..64u32 {
            for a in Kleene::ALL {
                for c in Kleene::ALL {
                    let (ta, ha) = lane_planes(a, b);
                    let (tb, hb) = lane_planes(c, b);
                    let bad = le_info_violations(ta, ha, tb, hb, !0);
                    assert_eq!(
                        (bad >> b) & 1 != 0,
                        !a.le_info(c),
                        "le_info lane {b}: {a} ⊑ {c}"
                    );
                    // Other lanes encode (False ⊑ False): never a violation.
                    assert_eq!(bad & !(1 << b), 0);
                }
            }
        }
    }

    #[test]
    fn negation_respects_valid_mask() {
        // All-False planes negate to all-True, but only on valid lanes.
        for n in [1usize, 3, 63, 64] {
            let (t, h) = not_word(0, 0, tail_mask(n));
            assert_eq!(t, tail_mask(n));
            assert_eq!(h, 0);
        }
    }

    #[test]
    fn geometry_helpers() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(tail_mask(64), !0);
        assert_eq!(tail_mask(0), !0);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(word_mask(65, 0), !0);
        assert_eq!(word_mask(65, 1), 1);
        assert_eq!(lane(65), (1, 1));
    }

    #[test]
    fn scan_helpers() {
        let words = [0b1010u64, 0, 1 << 63];
        assert_eq!(count_set(&words), 3);
        assert!(any_set(&words));
        assert_eq!(first_set(&words), Some(1));
        let mut seen = Vec::new();
        for_each_set(&words, |ix| seen.push(ix));
        assert_eq!(seen, vec![1, 3, 191]);
        assert_eq!(first_set(&[0, 0]), None);
        assert!(!any_set(&[0, 0]));
    }

    #[test]
    fn lane_roundtrip() {
        let mut t = vec![0u64; 2];
        let mut h = vec![0u64; 2];
        for (ix, v) in [(0, Kleene::True), (63, Kleene::Unknown), (64, Kleene::True)] {
            set_lane(&mut t, &mut h, ix, v);
            assert_eq!(get_lane(&t, &h, ix), v);
        }
        set_lane(&mut t, &mut h, 0, Kleene::False);
        assert_eq!(get_lane(&t, &h, 0), Kleene::False);
        assert_eq!(get_lane(&t, &h, 63), Kleene::Unknown);
    }
}
