//! Word-parallel Kleene bitplane primitives.
//!
//! A vector of [`Kleene`] values is stored as *two bitplanes*:
//! a `true`-plane `t` and a `half`-plane `h`, one bit per element, packed
//! into `u64` words. The encoding per lane is
//!
//! | value     | `t` | `h` |
//! |-----------|-----|-----|
//! | `False`   | 0   | 0   |
//! | `Unknown` | 0   | 1   |
//! | `True`    | 1   | 0   |
//!
//! with the invariant `t & h == 0` (a lane is never both). Under this
//! encoding every Kleene connective becomes a constant number of boolean
//! word operations applied to 64 lanes at once:
//!
//! | op            | `t'`                | `h'`                              |
//! |---------------|---------------------|-----------------------------------|
//! | `a ∧ b`       | `t1 & t2`           | `(t1\|h1) & (t2\|h2) & !(t1&t2)`  |
//! | `a ∨ b`       | `t1 \| t2`          | `(h1\|h2) & !(t1\|t2)`            |
//! | `¬a`          | `valid & !(t\|h)`   | `h`                               |
//! | `a ⊔ b` (join)| `t1 & t2`           | `(t1^t2) \| h1 \| h2`             |
//!
//! These identities are proven exhaustively against the scalar
//! [`Kleene`] operations — for all 3×3 input pairs in all 64
//! lanes — by the property tests in `tests/properties.rs` and the unit tests
//! below.
//!
//! Rows longer than 64 lanes span multiple words ([`words_for`]); the bits of
//! the last word past the logical length are *padding* and must always be
//! zero (the stride/padding invariant). Producers that could set padding
//! bits (notably negation, whose `valid` mask exists exactly for this) mask
//! with [`tail_mask`].

use crate::kleene::Kleene;

/// Number of lanes per storage word.
pub const WORD_BITS: usize = 64;

/// Number of `u64` words needed to hold `n` lanes.
#[inline]
pub fn words_for(n: usize) -> usize {
    n.div_ceil(WORD_BITS)
}

/// Mask of the valid (non-padding) bits of the *last* word of an `n`-lane
/// row. All earlier words are fully valid (`!0`). `n` must not be zero
/// modulo full rows: for `n % 64 == 0` (including `n == 0`) every word is
/// full and the mask is `!0`.
#[inline]
pub fn tail_mask(n: usize) -> u64 {
    let rem = n % WORD_BITS;
    if rem == 0 {
        !0
    } else {
        (1u64 << rem) - 1
    }
}

/// Valid-lane mask of word `w` in an `n`-lane row of `words_for(n)` words.
#[inline]
pub fn word_mask(n: usize, w: usize) -> u64 {
    if (w + 1) * WORD_BITS <= n {
        !0
    } else {
        tail_mask(n)
    }
}

/// Splits a lane index into its word index and in-word bit offset.
#[inline]
pub fn lane(ix: usize) -> (usize, u32) {
    (ix / WORD_BITS, (ix % WORD_BITS) as u32)
}

/// Reads the Kleene value of one lane from a plane pair.
#[inline]
pub fn get_lane(t: &[u64], h: &[u64], ix: usize) -> Kleene {
    let (w, b) = lane(ix);
    Kleene::from_bits((t[w] >> b) & 1 != 0, (h[w] >> b) & 1 != 0)
}

/// Writes the Kleene value of one lane into a plane pair.
#[inline]
pub fn set_lane(t: &mut [u64], h: &mut [u64], ix: usize, v: Kleene) {
    let (w, b) = lane(ix);
    let bit = 1u64 << b;
    let (tb, hb) = v.to_bits();
    if tb {
        t[w] |= bit;
    } else {
        t[w] &= !bit;
    }
    if hb {
        h[w] |= bit;
    } else {
        h[w] &= !bit;
    }
}

/// 64-lane Kleene conjunction.
#[inline]
pub fn and_word(t1: u64, h1: u64, t2: u64, h2: u64) -> (u64, u64) {
    let t = t1 & t2;
    (t, (t1 | h1) & (t2 | h2) & !t)
}

/// 64-lane Kleene disjunction.
#[inline]
pub fn or_word(t1: u64, h1: u64, t2: u64, h2: u64) -> (u64, u64) {
    let t = t1 | t2;
    (t, (h1 | h2) & !t)
}

/// 64-lane Kleene negation. `valid` masks the lanes that exist; padding
/// lanes stay zero.
#[inline]
pub fn not_word(t: u64, h: u64, valid: u64) -> (u64, u64) {
    (valid & !(t | h), h)
}

/// 64-lane information-order join (`x ⊔ x = x`, distinct values → `Unknown`).
#[inline]
pub fn join_word(t1: u64, h1: u64, t2: u64, h2: u64) -> (u64, u64) {
    (t1 & t2, (t1 ^ t2) | h1 | h2)
}

/// Lanes of `valid` where `a ⊑ b` does **not** hold (`b` is neither equal to
/// `a` nor `Unknown`). A zero result on every word of a row means the whole
/// row is information-ordered.
#[inline]
pub fn le_info_violations(ta: u64, ha: u64, tb: u64, hb: u64, valid: u64) -> u64 {
    let eq = !(ta ^ tb) & !(ha ^ hb);
    valid & !(eq | hb)
}

/// Total number of set bits in a word slice.
#[inline]
pub fn count_set(words: &[u64]) -> u32 {
    words.iter().map(|w| w.count_ones()).sum()
}

/// Whether any bit is set in a word slice.
#[inline]
pub fn any_set(words: &[u64]) -> bool {
    words.iter().any(|&w| w != 0)
}

/// Index of the lowest set bit across a word slice, if any.
#[inline]
pub fn first_set(words: &[u64]) -> Option<usize> {
    for (wi, &w) in words.iter().enumerate() {
        if w != 0 {
            return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
        }
    }
    None
}

/// Calls `f` with the index of every set bit, in ascending order
/// (`trailing_zeros` iteration).
#[inline]
pub fn for_each_set(words: &[u64], mut f: impl FnMut(usize)) {
    for (wi, &word) in words.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            f(wi * WORD_BITS + w.trailing_zeros() as usize);
            w &= w - 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Wide-lane block kernels.
//
// The per-word primitives above process 64 lanes per operation; the kernels
// below process whole *rows* (multi-word slices) in manually unrolled
// 4×`u64` blocks — 256 lanes per loop iteration — with a scalar remainder
// loop for the last `len % 4` words. Unrolling gives the optimizer four
// independent dependency chains per iteration, which is what lets it keep
// the ALU ports (or, with the `simd` feature on an AVX2 host, the 256-bit
// vector units) busy. Semantics are defined by the per-word identities: each
// block kernel must be lane-for-lane equal to mapping its `*_word` primitive
// over the row, which the property tests in `tests/properties.rs` check
// exhaustively for every operand pair in every lane, on both the unrolled
// and the SIMD paths.

/// Words per unrolled block (4 × 64 = 256 lanes per iteration).
pub const BLOCK_WORDS: usize = 4;

/// Minimum row length (words) for the AVX2 dispatch. Below this the
/// per-call feature probe and the non-inlinable `#[target_feature]` call
/// cost more than the vector ops save, so short rows always take the
/// unrolled path.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
const SIMD_MIN_WORDS: usize = 2 * BLOCK_WORDS;

/// Bitwise OR of `src` into `dst` (the Warshall closure inner union), block
/// at a time.
#[inline]
pub fn or_into(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if dst.len() >= SIMD_MIN_WORDS && is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 availability checked at runtime.
        unsafe { simd::or_into_avx2(dst, src) };
        return;
    }
    let mut d = dst.chunks_exact_mut(BLOCK_WORDS);
    let mut s = src.chunks_exact(BLOCK_WORDS);
    for (db, sb) in d.by_ref().zip(s.by_ref()) {
        db[0] |= sb[0];
        db[1] |= sb[1];
        db[2] |= sb[2];
        db[3] |= sb[3];
    }
    for (dw, &sw) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dw |= sw;
    }
}

/// Asserts the five-slice row-kernel length contract.
#[inline]
fn check_rows(t1: &[u64], h1: &[u64], t2: &[u64], h2: &[u64], to: &[u64], ho: &[u64]) {
    let len = to.len();
    assert!(
        t1.len() == len
            && h1.len() == len
            && t2.len() == len
            && h2.len() == len
            && ho.len() == len,
        "row kernels require equal-length plane slices"
    );
}

macro_rules! binary_row_kernel {
    ($(#[$doc:meta])* $name:ident, $word:ident, $avx2:ident) => {
        $(#[$doc])*
        #[inline]
        pub fn $name(
            t1: &[u64],
            h1: &[u64],
            t2: &[u64],
            h2: &[u64],
            to: &mut [u64],
            ho: &mut [u64],
        ) {
            check_rows(t1, h1, t2, h2, to, ho);
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if to.len() >= SIMD_MIN_WORDS && is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 availability checked at runtime.
                unsafe { simd::$avx2(t1, h1, t2, h2, to, ho) };
                return;
            }
            let mut tob = to.chunks_exact_mut(BLOCK_WORDS);
            let mut hob = ho.chunks_exact_mut(BLOCK_WORDS);
            let mut t1b = t1.chunks_exact(BLOCK_WORDS);
            let mut h1b = h1.chunks_exact(BLOCK_WORDS);
            let mut t2b = t2.chunks_exact(BLOCK_WORDS);
            let mut h2b = h2.chunks_exact(BLOCK_WORDS);
            for (tw, hw) in tob.by_ref().zip(hob.by_ref()) {
                let (a, b, c, d) = (
                    t1b.next().unwrap(),
                    h1b.next().unwrap(),
                    t2b.next().unwrap(),
                    h2b.next().unwrap(),
                );
                for i in 0..BLOCK_WORDS {
                    let (x, y) = $word(a[i], b[i], c[i], d[i]);
                    tw[i] = x;
                    hw[i] = y;
                }
            }
            let (tr, hr) = (tob.into_remainder(), hob.into_remainder());
            let (a, b, c, d) =
                (t1b.remainder(), h1b.remainder(), t2b.remainder(), h2b.remainder());
            for i in 0..tr.len() {
                let (x, y) = $word(a[i], b[i], c[i], d[i]);
                tr[i] = x;
                hr[i] = y;
            }
        }
    };
}

binary_row_kernel!(
    /// Row-wide Kleene conjunction: [`and_word`] over every word of the row.
    and_rows,
    and_word,
    and_rows_avx2
);
binary_row_kernel!(
    /// Row-wide Kleene disjunction: [`or_word`] over every word of the row.
    or_rows,
    or_word,
    or_rows_avx2
);
binary_row_kernel!(
    /// Row-wide information-order join: [`join_word`] over every word.
    join_rows,
    join_word,
    join_rows_avx2
);

/// Row-wide Kleene negation of an `n`-lane row ([`not_word`] per word, with
/// the per-word valid mask keeping padding bits zero).
#[inline]
pub fn not_rows(t: &[u64], h: &[u64], n: usize, to: &mut [u64], ho: &mut [u64]) {
    let len = to.len();
    assert!(t.len() == len && h.len() == len && ho.len() == len);
    let full = if len > 0 && tail_mask(n) == !0 { len } else { len.saturating_sub(1) };
    {
        let mut tob = to[..full].chunks_exact_mut(BLOCK_WORDS);
        let mut hob = ho[..full].chunks_exact_mut(BLOCK_WORDS);
        let mut tb = t[..full].chunks_exact(BLOCK_WORDS);
        let mut hb = h[..full].chunks_exact(BLOCK_WORDS);
        for (tw, hw) in tob.by_ref().zip(hob.by_ref()) {
            let (a, b) = (tb.next().unwrap(), hb.next().unwrap());
            for i in 0..BLOCK_WORDS {
                let (x, y) = not_word(a[i], b[i], !0);
                tw[i] = x;
                hw[i] = y;
            }
        }
        let (tr, hr) = (tob.into_remainder(), hob.into_remainder());
        let (a, b) = (tb.remainder(), hb.remainder());
        for i in 0..tr.len() {
            let (x, y) = not_word(a[i], b[i], !0);
            tr[i] = x;
            hr[i] = y;
        }
    }
    for w in full..len {
        let (a, b) = not_word(t[w], h[w], word_mask(n, w));
        to[w] = a;
        ho[w] = b;
    }
}

/// In-place information-order weakening `True → Unknown` of a whole row:
/// `h |= t; t = 0` (the merge-conflict weakening), block at a time.
#[inline]
pub fn weaken_rows(t: &mut [u64], h: &mut [u64]) {
    assert_eq!(t.len(), h.len());
    let mut tb = t.chunks_exact_mut(BLOCK_WORDS);
    let mut hb = h.chunks_exact_mut(BLOCK_WORDS);
    for (tw, hw) in tb.by_ref().zip(hb.by_ref()) {
        for i in 0..BLOCK_WORDS {
            hw[i] |= tw[i];
            tw[i] = 0;
        }
    }
    for (tw, hw) in tb.into_remainder().iter_mut().zip(hb.into_remainder()) {
        *hw |= *tw;
        *tw = 0;
    }
}

/// Whether any valid lane of an `n`-lane row is definitely `False`
/// (`t = 0, h = 0`): the ∀-fold's counterexample probe.
#[inline]
pub fn any_false(t: &[u64], h: &[u64], n: usize) -> bool {
    assert_eq!(t.len(), h.len());
    let len = t.len();
    // Padding lanes read as False but are not valid: exclude the tail word
    // from the block sweep whenever it carries padding.
    let full = if len > 0 && tail_mask(n) == !0 { len } else { len.saturating_sub(1) };
    let mut tb = t[..full].chunks_exact(BLOCK_WORDS);
    let mut hb = h[..full].chunks_exact(BLOCK_WORDS);
    for (a, b) in tb.by_ref().zip(hb.by_ref()) {
        let mut acc = 0;
        for i in 0..BLOCK_WORDS {
            acc |= !(a[i] | b[i]);
        }
        if acc != 0 {
            return true;
        }
    }
    for (&a, &b) in tb.remainder().iter().zip(hb.remainder()) {
        if !(a | b) != 0 {
            return true;
        }
    }
    len > full && word_mask(n, len - 1) & !(t[len - 1] | h[len - 1]) != 0
}

/// Whether any valid lane of a whole plane slab (rows of `stride` words,
/// `n` valid lanes per row) violates `a ⊑ b` — the embedding check
/// [`le_info_violations`] applied block-wide.
#[inline]
pub fn le_info_any(ta: &[u64], ha: &[u64], tb: &[u64], hb: &[u64], n: usize, stride: usize) -> bool {
    let len = ta.len();
    assert!(ha.len() == len && tb.len() == len && hb.len() == len);
    if stride == 0 || len == 0 {
        return false;
    }
    debug_assert_eq!(len % stride, 0);
    if tail_mask(n) == !0 {
        // Every word fully valid: one unmasked sweep over the whole slab.
        let mut tab = ta.chunks_exact(BLOCK_WORDS);
        let mut hab = ha.chunks_exact(BLOCK_WORDS);
        let mut tbb = tb.chunks_exact(BLOCK_WORDS);
        let mut hbb = hb.chunks_exact(BLOCK_WORDS);
        for (a, b) in tab.by_ref().zip(hab.by_ref()) {
            let (c, d) = (tbb.next().unwrap(), hbb.next().unwrap());
            let mut acc = 0;
            for i in 0..BLOCK_WORDS {
                acc |= le_info_violations(a[i], b[i], c[i], d[i], !0);
            }
            if acc != 0 {
                return true;
            }
        }
        let (a, b) = (tab.remainder(), hab.remainder());
        let (c, d) = (tbb.remainder(), hbb.remainder());
        for i in 0..a.len() {
            if le_info_violations(a[i], b[i], c[i], d[i], !0) != 0 {
                return true;
            }
        }
        return false;
    }
    // Rows end in a padding tail: sweep each row's full words unmasked, then
    // mask its final word. Padding bits are zero on both sides by the stride
    // invariant, and (False ⊑ False) is never a violation, so the full-word
    // sweep could even tolerate them — the mask keeps the contract explicit.
    for row in 0..len / stride {
        let base = row * stride;
        for w in 0..stride - 1 {
            if le_info_violations(ta[base + w], ha[base + w], tb[base + w], hb[base + w], !0) != 0
            {
                return true;
            }
        }
        let w = base + stride - 1;
        if le_info_violations(ta[w], ha[w], tb[w], hb[w], tail_mask(n)) != 0 {
            return true;
        }
    }
    false
}

/// Whether any lane is possibly set (`≠ False`) in *both* plane pairs:
/// `(t1|h1) & (t2|h2)` over the row, block at a time (the failing-site and
/// overlap scans).
#[inline]
pub fn overlap_any(t1: &[u64], h1: &[u64], t2: &[u64], h2: &[u64]) -> bool {
    let len = t1.len();
    assert!(h1.len() == len && t2.len() == len && h2.len() == len);
    let mut t1b = t1.chunks_exact(BLOCK_WORDS);
    let mut h1b = h1.chunks_exact(BLOCK_WORDS);
    let mut t2b = t2.chunks_exact(BLOCK_WORDS);
    let mut h2b = h2.chunks_exact(BLOCK_WORDS);
    for (a, b) in t1b.by_ref().zip(h1b.by_ref()) {
        let (c, d) = (t2b.next().unwrap(), h2b.next().unwrap());
        let mut acc = 0;
        for i in 0..BLOCK_WORDS {
            acc |= (a[i] | b[i]) & (c[i] | d[i]);
        }
        if acc != 0 {
            return true;
        }
    }
    let (a, b) = (t1b.remainder(), h1b.remainder());
    let (c, d) = (t2b.remainder(), h2b.remainder());
    for i in 0..a.len() {
        if (a[i] | b[i]) & (c[i] | d[i]) != 0 {
            return true;
        }
    }
    false
}

/// AVX2 realizations of the row kernels (the `simd` feature on x86-64
/// hosts). Each function is lane-for-lane identical to its unrolled
/// counterpart — the property tests run on whichever path the host
/// dispatches to, and CI runs them with the feature both on and off.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd {
    use std::arch::x86_64::{
        __m256i, _mm256_and_si256, _mm256_andnot_si256, _mm256_loadu_si256, _mm256_or_si256,
        _mm256_storeu_si256, _mm256_xor_si256,
    };

    #[inline]
    unsafe fn load(s: &[u64], w: usize) -> __m256i {
        _mm256_loadu_si256(s.as_ptr().add(w) as *const __m256i)
    }

    #[inline]
    unsafe fn store(s: &mut [u64], w: usize, v: __m256i) {
        _mm256_storeu_si256(s.as_mut_ptr().add(w) as *mut __m256i, v)
    }

    macro_rules! avx2_binary_kernel {
        ($name:ident, $word:ident, |$t1:ident, $h1:ident, $t2:ident, $h2:ident| ($te:expr, $he:expr)) => {
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(
                t1: &[u64],
                h1: &[u64],
                t2: &[u64],
                h2: &[u64],
                to: &mut [u64],
                ho: &mut [u64],
            ) {
                let len = to.len();
                let blocks = len - len % super::BLOCK_WORDS;
                let mut w = 0;
                while w < blocks {
                    let $t1 = load(t1, w);
                    let $h1 = load(h1, w);
                    let $t2 = load(t2, w);
                    let $h2 = load(h2, w);
                    store(to, w, $te);
                    store(ho, w, $he);
                    w += super::BLOCK_WORDS;
                }
                while w < len {
                    let (a, b) = super::$word(t1[w], h1[w], t2[w], h2[w]);
                    to[w] = a;
                    ho[w] = b;
                    w += 1;
                }
            }
        };
    }

    // t' = t1 & t2; h' = (t1|h1) & (t2|h2) & !t'
    avx2_binary_kernel!(and_rows_avx2, and_word, |at, ah, bt, bh| (
        _mm256_and_si256(at, bt),
        _mm256_andnot_si256(
            _mm256_and_si256(at, bt),
            _mm256_and_si256(_mm256_or_si256(at, ah), _mm256_or_si256(bt, bh))
        )
    ));
    // t' = t1 | t2; h' = (h1|h2) & !t'
    avx2_binary_kernel!(or_rows_avx2, or_word, |at, ah, bt, bh| (
        _mm256_or_si256(at, bt),
        _mm256_andnot_si256(_mm256_or_si256(at, bt), _mm256_or_si256(ah, bh))
    ));
    // t' = t1 & t2; h' = (t1^t2) | h1 | h2
    avx2_binary_kernel!(join_rows_avx2, join_word, |at, ah, bt, bh| (
        _mm256_and_si256(at, bt),
        _mm256_or_si256(_mm256_xor_si256(at, bt), _mm256_or_si256(ah, bh))
    ));

    #[target_feature(enable = "avx2")]
    pub unsafe fn or_into_avx2(dst: &mut [u64], src: &[u64]) {
        let len = dst.len();
        let blocks = len - len % super::BLOCK_WORDS;
        let mut w = 0;
        while w < blocks {
            let d = load(dst, w);
            let s = load(src, w);
            store(dst, w, _mm256_or_si256(d, s));
            w += super::BLOCK_WORDS;
        }
        while w < len {
            dst[w] |= src[w];
            w += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a single-word plane pair holding `v` in lane `b`.
    fn lane_planes(v: Kleene, b: u32) -> (u64, u64) {
        let (t, h) = v.to_bits();
        ((t as u64) << b, (h as u64) << b)
    }

    fn read_lane(t: u64, h: u64, b: u32) -> Kleene {
        Kleene::from_bits((t >> b) & 1 != 0, (h >> b) & 1 != 0)
    }

    #[test]
    fn word_ops_match_scalar_in_every_lane() {
        for b in 0..64u32 {
            for a in Kleene::ALL {
                for c in Kleene::ALL {
                    let (t1, h1) = lane_planes(a, b);
                    let (t2, h2) = lane_planes(c, b);
                    let (t, h) = and_word(t1, h1, t2, h2);
                    assert_eq!(read_lane(t, h, b), a & c, "and lane {b}: {a} {c}");
                    assert_eq!(t & h, 0, "and: t/h invariant");
                    let (t, h) = or_word(t1, h1, t2, h2);
                    assert_eq!(read_lane(t, h, b), a | c, "or lane {b}: {a} {c}");
                    assert_eq!(t & h, 0, "or: t/h invariant");
                    let (t, h) = join_word(t1, h1, t2, h2);
                    assert_eq!(read_lane(t, h, b), a.join(c), "join lane {b}: {a} {c}");
                    assert_eq!(t & h, 0, "join: t/h invariant");
                }
                let (t1, h1) = lane_planes(a, b);
                let (t, h) = not_word(t1, h1, !0);
                assert_eq!(read_lane(t, h, b), !a, "not lane {b}: {a}");
            }
        }
    }

    #[test]
    fn le_info_violation_lanes_match_scalar() {
        for b in 0..64u32 {
            for a in Kleene::ALL {
                for c in Kleene::ALL {
                    let (ta, ha) = lane_planes(a, b);
                    let (tb, hb) = lane_planes(c, b);
                    let bad = le_info_violations(ta, ha, tb, hb, !0);
                    assert_eq!(
                        (bad >> b) & 1 != 0,
                        !a.le_info(c),
                        "le_info lane {b}: {a} ⊑ {c}"
                    );
                    // Other lanes encode (False ⊑ False): never a violation.
                    assert_eq!(bad & !(1 << b), 0);
                }
            }
        }
    }

    #[test]
    fn negation_respects_valid_mask() {
        // All-False planes negate to all-True, but only on valid lanes.
        for n in [1usize, 3, 63, 64] {
            let (t, h) = not_word(0, 0, tail_mask(n));
            assert_eq!(t, tail_mask(n));
            assert_eq!(h, 0);
        }
    }

    #[test]
    fn geometry_helpers() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(tail_mask(64), !0);
        assert_eq!(tail_mask(0), !0);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(word_mask(65, 0), !0);
        assert_eq!(word_mask(65, 1), 1);
        assert_eq!(lane(65), (1, 1));
    }

    #[test]
    fn scan_helpers() {
        let words = [0b1010u64, 0, 1 << 63];
        assert_eq!(count_set(&words), 3);
        assert!(any_set(&words));
        assert_eq!(first_set(&words), Some(1));
        let mut seen = Vec::new();
        for_each_set(&words, |ix| seen.push(ix));
        assert_eq!(seen, vec![1, 3, 191]);
        assert_eq!(first_set(&[0, 0]), None);
        assert!(!any_set(&[0, 0]));
    }

    #[test]
    fn lane_roundtrip() {
        let mut t = vec![0u64; 2];
        let mut h = vec![0u64; 2];
        for (ix, v) in [(0, Kleene::True), (63, Kleene::Unknown), (64, Kleene::True)] {
            set_lane(&mut t, &mut h, ix, v);
            assert_eq!(get_lane(&t, &h, ix), v);
        }
        set_lane(&mut t, &mut h, 0, Kleene::False);
        assert_eq!(get_lane(&t, &h, 0), Kleene::False);
        assert_eq!(get_lane(&t, &h, 63), Kleene::Unknown);
    }
}
