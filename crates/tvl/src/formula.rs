//! First-order formulas with transitive closure.
//!
//! Formulas are the expression sub-language of a first-order transition
//! system (paper §4.1): they appear as predicate-update right-hand sides, as
//! `requires` checks, as separation-strategy choice conditions, and as the
//! defining formulas of instrumentation predicates such as `relevant`.
//!
//! Variables are plain indices ([`Var`]); quantifiers bind a variable index
//! within their body. Builders on [`Formula`] keep construction readable:
//!
//! ```
//! use hetsep_tvl::formula::{Formula, Var};
//! use hetsep_tvl::{PredTable, PredFlags};
//! let mut t = PredTable::new();
//! let x = t.add_unary("x", PredFlags::reference_variable());
//! let f = t.add_binary("f", PredFlags::reference_field());
//! let (v, w) = (Var(0), Var(1));
//! // ∃w. x(w) ∧ f(w, v)
//! let phi = Formula::exists(w, Formula::unary(x, w).and(Formula::binary(f, w, v)));
//! assert_eq!(phi.free_vars(), vec![v]);
//! ```

use std::fmt;

use crate::kleene::Kleene;
use crate::pred::PredId;

/// A logical variable, identified by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u16);

impl From<u16> for Var {
    fn from(ix: u16) -> Var {
        Var(ix)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A first-order formula with transitive closure over three-valued
/// structures.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// A constant truth value.
    Const(Kleene),
    /// A nullary predicate occurrence.
    Nullary(PredId),
    /// A unary predicate applied to a variable.
    Unary(PredId, Var),
    /// A binary predicate applied to two variables.
    Binary(PredId, Var, Var),
    /// Equality of two individuals. On a summary node `u`, `u == u`
    /// evaluates to `1/2` (the node may stand for several individuals).
    Eq(Var, Var),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Existential quantification.
    Exists(Var, Box<Formula>),
    /// Universal quantification.
    Forall(Var, Box<Formula>),
    /// `Tc { lhs, rhs, a, b, body }` is the (non-reflexive) transitive
    /// closure `(TC a,b : body)(lhs, rhs)`: there is a path of one or more
    /// `body`-steps from `lhs` to `rhs`.
    Tc {
        /// Source endpoint of the closure query.
        lhs: Var,
        /// Target endpoint of the closure query.
        rhs: Var,
        /// Step source variable bound by the closure.
        a: Var,
        /// Step target variable bound by the closure.
        b: Var,
        /// Step formula relating `a` to `b`.
        body: Box<Formula>,
    },
}

impl Formula {
    /// The constant `1`.
    pub fn tt() -> Formula {
        Formula::Const(Kleene::True)
    }

    /// The constant `0`.
    pub fn ff() -> Formula {
        Formula::Const(Kleene::False)
    }

    /// A unary predicate occurrence `p(v)`.
    pub fn unary(p: PredId, v: Var) -> Formula {
        Formula::Unary(p, v)
    }

    /// A binary predicate occurrence `p(a, b)`.
    pub fn binary(p: PredId, a: Var, b: Var) -> Formula {
        Formula::Binary(p, a, b)
    }

    /// A nullary predicate occurrence `p()`.
    pub fn nullary(p: PredId) -> Formula {
        Formula::Nullary(p)
    }

    /// Equality `a == b`.
    pub fn eq(a: Var, b: Var) -> Formula {
        Formula::Eq(a, b)
    }

    /// Negation `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Conjunction `self ∧ rhs`.
    pub fn and(self, rhs: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(rhs))
    }

    /// Disjunction `self ∨ rhs`.
    pub fn or(self, rhs: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(rhs))
    }

    /// Implication `self → rhs`, desugared to `¬self ∨ rhs`.
    pub fn implies(self, rhs: Formula) -> Formula {
        self.not().or(rhs)
    }

    /// If-then-else `cond ? self : other`, desugared to
    /// `(cond ∧ self) ∨ (¬cond ∧ other)`.
    pub fn ite(cond: Formula, then: Formula, other: Formula) -> Formula {
        cond.clone().and(then).or(cond.not().and(other))
    }

    /// Existential quantification `∃v. self`.
    pub fn exists(v: Var, body: Formula) -> Formula {
        Formula::Exists(v, Box::new(body))
    }

    /// Universal quantification `∀v. self`.
    pub fn forall(v: Var, body: Formula) -> Formula {
        Formula::Forall(v, Box::new(body))
    }

    /// Non-reflexive transitive closure `(TC a,b : body)(lhs, rhs)`.
    pub fn tc(lhs: Var, rhs: Var, a: Var, b: Var, body: Formula) -> Formula {
        Formula::Tc {
            lhs,
            rhs,
            a,
            b,
            body: Box::new(body),
        }
    }

    /// Conjunction of an iterator of formulas; empty conjunction is `1`.
    pub fn and_all(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut it = fs.into_iter();
        match it.next() {
            None => Formula::tt(),
            Some(first) => it.fold(first, Formula::and),
        }
    }

    /// Disjunction of an iterator of formulas; empty disjunction is `0`.
    pub fn or_all(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut it = fs.into_iter();
        match it.next() {
            None => Formula::ff(),
            Some(first) => it.fold(first, Formula::or),
        }
    }

    /// Free variables of the formula, in ascending order without duplicates.
    pub fn free_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_free(&self, bound: &mut Vec<Var>, out: &mut Vec<Var>) {
        match self {
            Formula::Const(_) | Formula::Nullary(_) => {}
            Formula::Unary(_, v) => {
                if !bound.contains(v) {
                    out.push(*v);
                }
            }
            Formula::Binary(_, a, b) | Formula::Eq(a, b) => {
                for v in [a, b] {
                    if !bound.contains(v) {
                        out.push(*v);
                    }
                }
            }
            Formula::Not(f) => f.collect_free(bound, out),
            Formula::And(l, r) | Formula::Or(l, r) => {
                l.collect_free(bound, out);
                r.collect_free(bound, out);
            }
            Formula::Exists(v, f) | Formula::Forall(v, f) => {
                bound.push(*v);
                f.collect_free(bound, out);
                bound.pop();
            }
            Formula::Tc { lhs, rhs, a, b, body } => {
                for v in [lhs, rhs] {
                    if !bound.contains(v) {
                        out.push(*v);
                    }
                }
                bound.push(*a);
                bound.push(*b);
                body.collect_free(bound, out);
                bound.pop();
                bound.pop();
            }
        }
    }

    /// Renames every *free* occurrence of `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` would be captured by a quantifier binding `to` while
    /// `from` occurs free beneath it.
    pub fn rename_free(&self, from: Var, to: Var) -> Formula {
        match self {
            Formula::Const(_) | Formula::Nullary(_) => self.clone(),
            Formula::Unary(p, v) => Formula::Unary(*p, if *v == from { to } else { *v }),
            Formula::Binary(p, a, b) => Formula::Binary(
                *p,
                if *a == from { to } else { *a },
                if *b == from { to } else { *b },
            ),
            Formula::Eq(a, b) => Formula::Eq(
                if *a == from { to } else { *a },
                if *b == from { to } else { *b },
            ),
            Formula::Not(f) => f.rename_free(from, to).not(),
            Formula::And(l, r) => l.rename_free(from, to).and(r.rename_free(from, to)),
            Formula::Or(l, r) => l.rename_free(from, to).or(r.rename_free(from, to)),
            Formula::Exists(v, f) => {
                if *v == from {
                    self.clone()
                } else {
                    assert!(
                        *v != to || !f.free_vars().contains(&from),
                        "variable capture while renaming {from} to {to}"
                    );
                    Formula::exists(*v, f.rename_free(from, to))
                }
            }
            Formula::Forall(v, f) => {
                if *v == from {
                    self.clone()
                } else {
                    assert!(
                        *v != to || !f.free_vars().contains(&from),
                        "variable capture while renaming {from} to {to}"
                    );
                    Formula::forall(*v, f.rename_free(from, to))
                }
            }
            Formula::Tc { lhs, rhs, a, b, body } => {
                let nl = if *lhs == from { to } else { *lhs };
                let nr = if *rhs == from { to } else { *rhs };
                if *a == from || *b == from {
                    Formula::Tc {
                        lhs: nl,
                        rhs: nr,
                        a: *a,
                        b: *b,
                        body: body.clone(),
                    }
                } else {
                    assert!(
                        (*a != to && *b != to) || !body.free_vars().contains(&from),
                        "variable capture while renaming {from} to {to}"
                    );
                    Formula::Tc {
                        lhs: nl,
                        rhs: nr,
                        a: *a,
                        b: *b,
                        body: Box::new(body.rename_free(from, to)),
                    }
                }
            }
        }
    }

    /// Largest variable index mentioned anywhere (free or bound), used for
    /// picking fresh variables.
    pub fn max_var(&self) -> Option<Var> {
        match self {
            Formula::Const(_) | Formula::Nullary(_) => None,
            Formula::Unary(_, v) => Some(*v),
            Formula::Binary(_, a, b) | Formula::Eq(a, b) => Some(*a.max(b)),
            Formula::Not(f) => f.max_var(),
            Formula::And(l, r) | Formula::Or(l, r) => match (l.max_var(), r.max_var()) {
                (None, x) | (x, None) => x,
                (Some(a), Some(b)) => Some(a.max(b)),
            },
            Formula::Exists(v, f) | Formula::Forall(v, f) => {
                Some(f.max_var().map_or(*v, |m| m.max(*v)))
            }
            Formula::Tc { lhs, rhs, a, b, body } => {
                let mut m = (*lhs).max(*rhs).max(*a).max(*b);
                if let Some(bm) = body.max_var() {
                    m = m.max(bm);
                }
                Some(m)
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Const(k) => write!(f, "{k}"),
            Formula::Nullary(p) => write!(f, "{p}()"),
            Formula::Unary(p, v) => write!(f, "{p}({v})"),
            Formula::Binary(p, a, b) => write!(f, "{p}({a},{b})"),
            Formula::Eq(a, b) => write!(f, "{a}=={b}"),
            Formula::Not(x) => write!(f, "!({x})"),
            Formula::And(l, r) => write!(f, "({l} & {r})"),
            Formula::Or(l, r) => write!(f, "({l} | {r})"),
            Formula::Exists(v, x) => write!(f, "(E {v}. {x})"),
            Formula::Forall(v, x) => write!(f, "(A {v}. {x})"),
            Formula::Tc { lhs, rhs, a, b, body } => {
                write!(f, "(TC {a},{b}: {body})({lhs},{rhs})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{PredFlags, PredTable};

    fn preds() -> (PredTable, PredId, PredId) {
        let mut t = PredTable::new();
        let x = t.add_unary("x", PredFlags::reference_variable());
        let f = t.add_binary("f", PredFlags::reference_field());
        (t, x, f)
    }

    #[test]
    fn free_vars_respects_binders() {
        let (_t, x, f) = preds();
        let (v0, v1, v2) = (Var(0), Var(1), Var(2));
        let phi = Formula::exists(v1, Formula::unary(x, v1).and(Formula::binary(f, v1, v0)));
        assert_eq!(phi.free_vars(), vec![v0]);
        let tc = Formula::tc(v0, v2, Var(3), Var(4), Formula::binary(f, Var(3), Var(4)));
        assert_eq!(tc.free_vars(), vec![v0, v2]);
    }

    #[test]
    fn rename_free_skips_bound() {
        let (_t, x, _f) = preds();
        let (v0, v1) = (Var(0), Var(1));
        let phi = Formula::unary(x, v0).and(Formula::exists(v0, Formula::unary(x, v0)));
        let renamed = phi.rename_free(v0, v1);
        assert_eq!(
            renamed,
            Formula::unary(x, v1).and(Formula::exists(v0, Formula::unary(x, v0)))
        );
    }

    #[test]
    #[should_panic(expected = "variable capture")]
    fn rename_detects_capture() {
        let (_t, x, _f) = preds();
        let (v0, v1) = (Var(0), Var(1));
        // ∃v1. x(v0) — renaming v0→v1 would be captured.
        let phi = Formula::exists(v1, Formula::unary(x, v0));
        let _ = phi.rename_free(v0, v1);
    }

    #[test]
    fn and_all_or_all_units() {
        assert_eq!(Formula::and_all([]), Formula::tt());
        assert_eq!(Formula::or_all([]), Formula::ff());
        let (_t, x, _f) = preds();
        let a = Formula::unary(x, Var(0));
        assert_eq!(Formula::and_all([a.clone()]), a);
    }

    #[test]
    fn max_var_spans_binders() {
        let (_t, x, f) = preds();
        let phi = Formula::exists(Var(7), Formula::unary(x, Var(7)).and(Formula::binary(f, Var(2), Var(7))));
        assert_eq!(phi.max_var(), Some(Var(7)));
        assert_eq!(Formula::tt().max_var(), None);
    }

    #[test]
    fn display_is_readable() {
        let (_t, x, f) = preds();
        let phi = Formula::exists(Var(1), Formula::unary(x, Var(1)).and(Formula::binary(f, Var(1), Var(0))));
        let s = phi.to_string();
        assert!(s.contains("E v1"), "{s}");
        assert!(s.contains('&'), "{s}");
    }
}
