//! Baseline behaviour on the collections (CMP) specification: the
//! allocation-site abstraction handles simple iterator invalidation but
//! weakens on loops, mirroring its IOStreams behaviour.

use hetsep_ir::parse_program;

fn run(src: &str) -> hetsep_baseline::BaselineReport {
    let p = parse_program(src).unwrap();
    let spec = hetsep_easl::builtin::by_name(&p.uses).unwrap();
    hetsep_baseline::verify(&p, &spec).unwrap()
}

#[test]
fn stale_iterator_detected() {
    let r = run(
        "program P uses CMP; void main() {\n\
         Collection c = new Collection();\n\
         Iterator it = c.iterator();\n\
         Element x = new Element();\n\
         c.add(x);\n\
         Element y = it.next();\n}",
    );
    assert!(!r.verified());
    assert!(r.errors.iter().any(|e| e.line == 6), "{:?}", r.errors);
}

#[test]
fn fresh_iterator_after_add_verifies() {
    let r = run(
        "program P uses CMP; void main() {\n\
         Collection c = new Collection();\n\
         Element x = new Element();\n\
         c.add(x);\n\
         Iterator it = c.iterator();\n\
         Element y = it.next();\n}",
    );
    assert!(r.verified(), "{:?}", r.errors);
}

#[test]
fn iterator_reacquired_in_loop_is_a_baseline_false_alarm() {
    // Correct (each iteration re-acquires), but the in-loop iterator site
    // is non-singleton: weak updates leave `invalid` possibly true.
    let r = run(
        "program P uses CMP; void main() {\n\
         Collection c = new Collection();\n\
         while (?) {\n\
         Element x = new Element();\n\
         c.add(x);\n\
         Iterator it = c.iterator();\n\
         Element y = it.next();\n\
         }\n}",
    );
    assert!(!r.verified(), "expected the weak-update false alarm");
}

#[test]
fn two_collections_do_not_interfere() {
    let r = run(
        "program P uses CMP; void main() {\n\
         Collection c1 = new Collection();\n\
         Collection c2 = new Collection();\n\
         Iterator it2 = c2.iterator();\n\
         Element x = new Element();\n\
         c1.add(x);\n\
         Element y = it2.next();\n}",
    );
    assert!(r.verified(), "{:?}", r.errors);
}

#[test]
fn sockets_spec_supported_by_baseline() {
    let r = run(
        "program P uses Sockets; void main() {\n\
         Socket s = new Socket();\n\
         s.connect();\n\
         s.send();\n\
         s.close();\n}",
    );
    assert!(r.verified(), "{:?}", r.errors);
    let bad = run(
        "program P uses Sockets; void main() {\n\
         Socket s = new Socket();\n\
         s.close();\n\
         s.send();\n}",
    );
    assert!(!bad.verified());
}
