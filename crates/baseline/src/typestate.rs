//! Phase 2: flow-sensitive typestate propagation over allocation sites.
//!
//! Each (allocation site, boolean field) pair carries one value of the
//! lattice `Bot < {False, True} < Top`. Transfer functions interpret Easl
//! bodies: boolean-field assignments move the state, with a **strong update
//! only when the assignment's target resolves to a single, singleton
//! allocation site** — otherwise the new value is joined in (a weak update).
//! `requires !path.f` checks fail when the field may be true.

use std::collections::{BTreeSet, HashMap, VecDeque};

use hetsep_easl::ast::{BoolRhs, EaslCond, EaslMethod, EaslStmt, Spec};
use hetsep_ir::cfg::{Cfg, CfgOp};
use hetsep_ir::Arg;

use crate::points_to::{PointsTo, Site};
use crate::{BaselineError, BaselineErrorReport, BaselineReport};

/// A three-point lattice over boolean field values (plus bottom).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoolVal {
    /// Unreachable / not yet allocated.
    #[default]
    Bot,
    /// Definitely false.
    False,
    /// Definitely true.
    True,
    /// May be either.
    Top,
}

impl BoolVal {
    /// Least upper bound.
    pub fn join(self, other: BoolVal) -> BoolVal {
        use BoolVal::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => x,
            (a, b) if a == b => a,
            _ => Top,
        }
    }

    /// Whether the value may be `true`.
    pub fn maybe_true(self) -> bool {
        matches!(self, BoolVal::True | BoolVal::Top)
    }
}

type State = HashMap<(Site, String), BoolVal>;

/// What the typestate phase found, beyond the per-line error reports:
/// the allocation sites that were *involved* in a possibly-failing (or
/// undecidable) `requires` check. Everything else is provably safe under
/// the coarse abstraction and eligible for subproblem pruning.
#[derive(Debug, Clone, Default)]
pub(crate) struct Findings {
    errors: BTreeSet<(u32, String)>,
    suspects: BTreeSet<Site>,
}

impl Findings {
    /// Marks every site bound in the current environment as suspect: a
    /// failing check may be about any object the method body can touch.
    fn suspect_env(&mut self, env: &HashMap<String, BTreeSet<Site>>) {
        for sites in env.values() {
            self.suspects.extend(sites.iter().copied());
        }
    }
}

fn join_states(a: &State, b: &State) -> State {
    let mut out = a.clone();
    for (k, &v) in b {
        let e = out.entry(k.clone()).or_default();
        *e = e.join(v);
    }
    out
}

/// Runs the typestate phase.
///
/// # Errors
///
/// Fails on calls to unknown library methods.
pub fn analyze(cfg: &Cfg, spec: &Spec, pt: &PointsTo) -> Result<BaselineReport, BaselineError> {
    analyze_with_suspects(cfg, spec, pt).map(|(report, _)| report)
}

/// Runs the typestate phase, additionally returning the allocation sites
/// involved in any possibly-failing or undecidable `requires` check (the
/// *suspect seeds* of the pruning pre-pass).
pub(crate) fn analyze_with_suspects(
    cfg: &Cfg,
    spec: &Spec,
    pt: &PointsTo,
) -> Result<(BaselineReport, BTreeSet<Site>), BaselineError> {
    let n = cfg.node_count();
    let mut states: Vec<Option<State>> = vec![None; n];
    states[cfg.entry()] = Some(State::new());
    let mut worklist: VecDeque<usize> = VecDeque::from([cfg.entry()]);
    let mut findings = Findings::default();
    let mut iterations = 0usize;

    while let Some(node) = worklist.pop_front() {
        iterations += 1;
        if iterations > 100_000 {
            return Err(BaselineError("typestate fixpoint did not converge".into()));
        }
        let state = states[node].clone().expect("queued nodes have state");
        for &edge_ix in cfg.out_edges(node) {
            let edge = &cfg.edges()[edge_ix];
            let mut next = state.clone();
            transfer(cfg, spec, pt, edge_ix, &edge.op, edge.line, &mut next, &mut findings)?;
            let target = edge.to;
            let joined = match &states[target] {
                None => next,
                Some(old) => {
                    let j = join_states(old, &next);
                    if &j == old {
                        continue;
                    }
                    j
                }
            };
            states[target] = Some(joined);
            worklist.push_back(target);
        }
    }

    let report = BaselineReport {
        errors: findings
            .errors
            .into_iter()
            .map(|(line, label)| BaselineErrorReport { line, label })
            .collect(),
        sites: pt.site_class.len(),
        iterations,
    };
    Ok((report, findings.suspects))
}

#[allow(clippy::too_many_arguments)]
fn transfer(
    cfg: &Cfg,
    spec: &Spec,
    pt: &PointsTo,
    edge_ix: usize,
    op: &CfgOp,
    line: u32,
    state: &mut State,
    findings: &mut Findings,
) -> Result<(), BaselineError> {
    let _ = cfg;
    match op {
        CfgOp::New { class, args, .. } => {
            if let Some(cls) = spec.class(class) {
                let mut env: HashMap<String, BTreeSet<Site>> = HashMap::new();
                env.insert("this".into(), BTreeSet::from([edge_ix]));
                bind_params(pt, &mut env, &cls.ctor, args);
                apply_allocation(spec, pt, edge_ix, state);
                let body = cls.ctor.body.clone();
                interpret(spec, pt, &body, &env, edge_ix, line, state, findings);
            } else {
                apply_allocation(spec, pt, edge_ix, state);
            }
            Ok(())
        }
        CfgOp::CallLib {
            recv,
            method,
            args,
            ..
        } => {
            let recv_sites = pt.of_var(recv);
            for site in recv_sites.iter().copied() {
                let Some(class) = pt.site_class.get(&site) else {
                    continue;
                };
                let Some(cls) = spec.class(class) else {
                    continue;
                };
                let Some(m) = cls.method(method) else {
                    return Err(BaselineError(format!(
                        "line {line}: class `{class}` has no method `{method}`"
                    )));
                };
                let mut env: HashMap<String, BTreeSet<Site>> = HashMap::new();
                env.insert("this".into(), BTreeSet::from([site]));
                bind_params(pt, &mut env, m, args);
                if let Some(var) = m.body.iter().find_map(|s| match s {
                    EaslStmt::Alloc { var, .. } => Some(var.clone()),
                    _ => None,
                }) {
                    env.insert(var, BTreeSet::from([edge_ix]));
                    apply_allocation(spec, pt, edge_ix, state);
                }
                let body = m.body.clone();
                interpret(spec, pt, &body, &env, edge_ix, line, state, findings);
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// A fresh object's boolean fields start false — strongly for singleton
/// sites, weakly (joined) otherwise, since older objects from the same site
/// keep their states. This weak update is exactly what makes the Fig. 3
/// loop unverifiable for the baseline.
fn apply_allocation(spec: &Spec, pt: &PointsTo, site: Site, state: &mut State) {
    let Some(class) = pt.site_class.get(&site) else {
        return;
    };
    let strong = pt.singleton.contains(&site);
    let Some(cls) = spec.class(class) else {
        return;
    };
    for (f, kind) in &cls.fields {
        if !matches!(kind, hetsep_easl::ast::FieldKind::Bool) {
            continue;
        }
        let e = state.entry((site, f.clone())).or_default();
        *e = if strong {
            BoolVal::False
        } else {
            e.join(BoolVal::False)
        };
    }
}

#[allow(clippy::too_many_arguments)]
#[allow(clippy::only_used_in_recursion)]
fn interpret(
    spec: &Spec,
    pt: &PointsTo,
    stmts: &[EaslStmt],
    env: &HashMap<String, BTreeSet<Site>>,
    alloc_site: Site,
    line: u32,
    state: &mut State,
    findings: &mut Findings,
) {
    for stmt in stmts {
        match stmt {
            EaslStmt::Requires(cond) => {
                let failing = cond_may_fail(pt, env, cond, state);
                if failing {
                    findings.errors.insert((line, "requires violated (baseline)".into()));
                }
                // A failing check implicates every object in scope; an
                // undecidable one (null-tests, negated compound forms) is
                // assumed satisfiable for error *reporting* but must not
                // license pruning — the precise engine may still fail it.
                if failing || cond_undecidable(cond) {
                    findings.suspect_env(env);
                }
            }
            EaslStmt::AssignBool {
                target,
                field,
                value,
            } => {
                let targets = pt.resolve_path(env, target);
                let val = match value {
                    BoolRhs::Const(true) => BoolVal::True,
                    BoolRhs::Const(false) => BoolVal::False,
                    BoolRhs::Nondet => BoolVal::Top,
                    BoolRhs::Read(p) => read_bool(pt, env, p, state),
                };
                // Strong update only for a unique singleton target reached
                // without heap indirection (`this.f = …` on a singleton).
                let direct = target.fields.is_empty();
                let strong = direct
                    && targets.len() == 1
                    && targets.iter().all(|s| pt.singleton.contains(s));
                for site in targets {
                    let e = state.entry((site, field.clone())).or_default();
                    *e = if strong { val } else { e.join(val) };
                }
            }
            EaslStmt::Alloc { var, class, args } => {
                // Nested constructor: interpret its boolean inits on the
                // allocation site of the enclosing call.
                if let Some(cls) = spec.class(class) {
                    let mut ctor_env: HashMap<String, BTreeSet<Site>> = HashMap::new();
                    ctor_env.insert("this".into(), env.get(var).cloned().unwrap_or_default());
                    for ((pname, pclass), apath) in cls
                        .ctor
                        .params
                        .iter()
                        .filter(|(_, t)| t != "String")
                        .zip(args)
                    {
                        let _ = pclass;
                        ctor_env.insert(pname.clone(), pt.resolve_path(env, apath));
                    }
                    let body = cls.ctor.body.clone();
                    interpret(spec, pt, &body, &ctor_env, alloc_site, line, state, findings);
                }
            }
            EaslStmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                // Path-insensitive: both branches' effects are joined by
                // virtue of weak interpretation. Apply both on copies and
                // join.
                let mut t = state.clone();
                interpret(spec, pt, then_branch, env, alloc_site, line, &mut t, findings);
                let mut e = state.clone();
                interpret(spec, pt, else_branch, env, alloc_site, line, &mut e, findings);
                *state = join_states(&t, &e);
            }
            EaslStmt::Foreach {
                var,
                target,
                field,
                body,
            } => {
                let owners = pt.resolve_path(env, target);
                let elems = pt.of_field(&owners, field);
                let mut inner = env.clone();
                inner.insert(var.clone(), elems);
                interpret(spec, pt, body, &inner, alloc_site, line, state, findings);
            }
            EaslStmt::AssignRef { .. }
            | EaslStmt::SetClear { .. }
            | EaslStmt::SetAdd { .. }
            | EaslStmt::Return(_) => {}
        }
    }
}

fn read_bool(
    pt: &PointsTo,
    env: &HashMap<String, BTreeSet<Site>>,
    path: &hetsep_easl::ast::Path,
    state: &State,
) -> BoolVal {
    let Some((field, init)) = path.fields.split_last() else {
        return BoolVal::Top;
    };
    let owner = hetsep_easl::ast::Path {
        root: path.root.clone(),
        fields: init.to_vec(),
    };
    let sites = pt.resolve_path(env, &owner);
    let mut acc = BoolVal::Bot;
    for s in sites {
        acc = acc.join(
            state
                .get(&(s, field.clone()))
                .copied()
                .unwrap_or(BoolVal::False),
        );
    }
    acc
}

fn cond_may_fail(
    pt: &PointsTo,
    env: &HashMap<String, BTreeSet<Site>>,
    cond: &EaslCond,
    state: &State,
) -> bool {
    match cond {
        // requires !p  — fails when p may be true.
        EaslCond::Not(inner) => match inner.as_ref() {
            EaslCond::Read(p) => read_bool(pt, env, p, state).maybe_true(),
            _ => false, // other negated forms: assumed satisfiable
        },
        // requires p — fails when p may be false.
        EaslCond::Read(p) => !matches!(read_bool(pt, env, p, state), BoolVal::True),
        EaslCond::And(a, b) => {
            cond_may_fail(pt, env, a, state) || cond_may_fail(pt, env, b, state)
        }
        // Null-checks: the site abstraction cannot decide them; assume ok.
        EaslCond::IsNull(_) | EaslCond::NotNull(_) => false,
    }
}

/// Whether the site abstraction is unable to evaluate part of the
/// condition at all. `cond_may_fail` assumes such parts satisfiable, which
/// keeps the error report small but is exactly the case in which the
/// precise engine may still find a violation — so pruning must treat every
/// object in scope as suspect.
fn cond_undecidable(cond: &EaslCond) -> bool {
    match cond {
        EaslCond::IsNull(_) | EaslCond::NotNull(_) => true,
        EaslCond::Not(inner) => !matches!(inner.as_ref(), EaslCond::Read(_)),
        EaslCond::And(a, b) => cond_undecidable(a) || cond_undecidable(b),
        EaslCond::Read(_) => false,
    }
}

fn bind_params(
    pt: &PointsTo,
    env: &mut HashMap<String, BTreeSet<Site>>,
    method: &EaslMethod,
    args: &[Arg],
) {
    for ((pname, pclass), arg) in method.params.iter().zip(args) {
        if pclass == "String" {
            continue;
        }
        let sites = match arg {
            Arg::Var(v) => pt.of_var(v),
            _ => BTreeSet::new(),
        };
        env.insert(pname.clone(), sites);
    }
}

#[cfg(test)]
mod tests {
    use crate::verify;
    use hetsep_ir::parse_program;

    fn run(src: &str) -> crate::BaselineReport {
        let p = parse_program(src).unwrap();
        let spec = hetsep_easl::builtin::by_name(&p.uses).unwrap();
        verify(&p, &spec).unwrap()
    }

    #[test]
    fn straightline_correct_program_verifies() {
        let r = run(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             f.read();\n\
             f.close();\n}",
        );
        assert!(r.verified(), "{:?}", r.errors);
    }

    #[test]
    fn read_after_close_detected() {
        let r = run(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             f.close();\n\
             f.read();\n}",
        );
        assert_eq!(r.errors.len(), 1);
        assert_eq!(r.errors[0].line, 4);
    }

    #[test]
    fn fig3_loop_is_a_false_alarm_for_the_baseline() {
        // The paper's Fig. 3: correct, but the allocation-site abstraction
        // forces weak updates, so the baseline cannot verify it.
        let r = run(
            "program P uses IOStreams; void main() {\n\
             while (?) {\n\
             File f = new File();\n\
             f.read();\n\
             f.close();\n\
             }\n}",
        );
        assert_eq!(r.errors.len(), 1, "expected the ESP-style false alarm");
        assert_eq!(r.errors[0].line, 4, "the read() is flagged");
    }

    #[test]
    fn jdbc_implicit_close_found_weakly() {
        let r = run(
            "program P uses JDBC; void main() {\n\
             ConnectionManager cm = new ConnectionManager();\n\
             Connection con = cm.getConnection();\n\
             Statement st = cm.createStatement(con);\n\
             ResultSet rs1 = st.executeQuery(\"a\");\n\
             ResultSet rs2 = st.executeQuery(\"b\");\n\
             while (rs1.next()) {\n\
             }\n}",
        );
        assert!(!r.verified());
        assert!(r.errors.iter().any(|e| e.line == 7), "{:?}", r.errors);
    }

    #[test]
    fn aliasing_close_detected() {
        let r = run(
            "program P uses IOStreams; void main() {\n\
             InputStream a = new InputStream();\n\
             InputStream b = a;\n\
             b.close();\n\
             a.read();\n}",
        );
        assert_eq!(r.errors.len(), 1);
    }

    #[test]
    fn two_independent_streams_verify() {
        let r = run(
            "program P uses IOStreams; void main() {\n\
             InputStream a = new InputStream();\n\
             InputStream b = new InputStream();\n\
             a.close();\n\
             b.read();\n\
             b.close();\n}",
        );
        assert!(r.verified(), "{:?}", r.errors);
    }

    fn suspects_of(src: &str) -> crate::SiteVerdicts {
        let p = parse_program(src).unwrap();
        let spec = hetsep_easl::builtin::by_name(&p.uses).unwrap();
        crate::verify_with_suspects(&p, &spec).unwrap()
    }

    #[test]
    fn clean_straightline_program_has_no_suspects() {
        let v = suspects_of(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             f.read();\n\
             f.close();\n}",
        );
        assert!(v.report.verified());
        assert!(v.suspects.is_empty(), "{:?}", v.suspects);
    }

    #[test]
    fn failing_check_marks_its_site_suspect() {
        let v = suspects_of(
            "program P uses IOStreams; void main() {\n\
             InputStream f = new InputStream();\n\
             f.close();\n\
             f.read();\n}",
        );
        assert!(!v.report.verified());
        assert_eq!(v.suspects.len(), 1, "{:?}", v.suspects);
        assert!(!v.proved_safe(*v.suspects.iter().next().unwrap()));
    }

    #[test]
    fn baseline_false_alarm_still_marks_suspect() {
        // Fig. 3: the engine would verify this, but the baseline cannot —
        // the site must stay suspect so pruning never hides the difference.
        let v = suspects_of(
            "program P uses IOStreams; void main() {\n\
             while (?) {\n\
             File f = new File();\n\
             f.read();\n\
             f.close();\n\
             }\n}",
        );
        assert!(!v.report.verified());
        assert!(!v.suspects.is_empty());
    }

    #[test]
    fn suspects_close_over_heap_components() {
        // The implicit-close chain: flagging the statement also implicates
        // the connection and result sets wired to it through the heap.
        let v = suspects_of(
            "program P uses JDBC; void main() {\n\
             ConnectionManager cm = new ConnectionManager();\n\
             Connection con = cm.getConnection();\n\
             Statement st = cm.createStatement(con);\n\
             ResultSet rs1 = st.executeQuery(\"a\");\n\
             ResultSet rs2 = st.executeQuery(\"b\");\n\
             while (rs1.next()) {\n\
             }\n}",
        );
        assert!(!v.report.verified());
        // con, st, rs1, rs2 are all one heap component.
        assert!(v.suspects.len() >= 4, "{:?}", v.suspects);
    }

    #[test]
    fn independent_clean_site_pruned_next_to_suspect_one() {
        let v = suspects_of(
            "program P uses IOStreams; void main() {\n\
             InputStream a = new InputStream();\n\
             InputStream b = new InputStream();\n\
             a.close();\n\
             a.read();\n\
             b.read();\n\
             b.close();\n}",
        );
        assert!(!v.report.verified());
        assert_eq!(v.suspects.len(), 1, "only `a`'s site: {:?}", v.suspects);
    }

    #[test]
    fn site_count_reported() {
        let r = run(
            "program P uses IOStreams; void main() {\n\
             InputStream a = new InputStream();\n\
             a.close();\n}",
        );
        assert_eq!(r.sites, 1);
        assert!(r.iterations > 0);
    }
}
