//! # hetsep-baseline
//!
//! An ESP-style **two-phase** typestate verifier, used as the comparison
//! point of the paper's related-work discussion (Das, Lerner & Seigle,
//! PLDI 2002):
//!
//! 1. a flow-insensitive, Andersen-style [`points_to`] analysis over
//!    allocation sites, then
//! 2. a flow-sensitive [`typestate`] propagation in which each allocation
//!    site carries one state from the lattice `Open < Top > Closed`.
//!
//! The crucial limitation this reproduces (paper Fig. 3): because the
//! pointer analysis runs *first* and abstracts objects by allocation site,
//! the typestate phase must use **weak updates** whenever a site may denote
//! more than one object — in particular for any allocation inside a loop.
//! The separation-based engine (`hetsep-core`), by contrast, materializes a
//! single chosen object and keeps strong updates.
//!
//! # Example
//!
//! ```
//! let program = hetsep_ir::parse_program(
//!     "program P uses IOStreams; void main() {\n\
//!      while (?) {\n\
//!        File f = new File();\n\
//!        f.read();\n\
//!        f.close();\n\
//!      }\n}",
//! )
//! .unwrap();
//! let spec = hetsep_easl::builtin::iostreams();
//! let report = hetsep_baseline::verify(&program, &spec).unwrap();
//! // ESP-style analysis cannot verify the Fig. 3 loop: false alarm.
//! assert_eq!(report.errors.len(), 1);
//! ```

pub mod points_to;
pub mod typestate;

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;

use hetsep_easl::ast::Spec;
use hetsep_ir::cfg::Cfg;
use hetsep_ir::Program;

pub use points_to::Site;

/// An error reported by the baseline, attributed to a source line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineErrorReport {
    /// 1-based source line.
    pub line: u32,
    /// Description.
    pub label: String,
}

impl fmt::Display for BaselineErrorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: possible error: {}", self.line, self.label)
    }
}

/// The baseline's verification result.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Per-line deduplicated reports.
    pub errors: Vec<BaselineErrorReport>,
    /// Number of allocation sites discovered.
    pub sites: usize,
    /// Number of dataflow iterations performed by the typestate phase.
    pub iterations: usize,
}

impl BaselineReport {
    /// Whether the baseline verified the program.
    pub fn verified(&self) -> bool {
        self.errors.is_empty()
    }
}

/// A failure while setting up the baseline analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError(pub String);

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline error: {}", self.0)
    }
}

impl std::error::Error for BaselineError {}

/// Runs the two-phase baseline verifier.
///
/// # Errors
///
/// Fails when the program cannot be lowered to a CFG or references unknown
/// library members.
pub fn verify(program: &Program, spec: &Spec) -> Result<BaselineReport, BaselineError> {
    let cfg = Cfg::build(program, "main").map_err(|e| BaselineError(e.to_string()))?;
    let pt = points_to::analyze(&cfg, spec, program)?;
    typestate::analyze(&cfg, spec, &pt)
}

/// The baseline's result refined to per-site verdicts, for use as a sound
/// pruning pre-pass: a *suspect* site is one the coarse abstraction could
/// not prove safe; every other site's subproblem is guaranteed error-free
/// and may be skipped by a precise per-site verifier.
#[derive(Debug, Clone)]
pub struct SiteVerdicts {
    /// The ordinary baseline report (per-line errors, site/iteration counts).
    pub report: BaselineReport,
    /// Allocation sites (CFG edge indices — the same numbering the engine's
    /// separation mode uses) that may be involved in a failing check.
    pub suspects: BTreeSet<Site>,
}

impl SiteVerdicts {
    /// Whether the baseline proved `site` safe (not suspect).
    pub fn proved_safe(&self, site: Site) -> bool {
        !self.suspects.contains(&site)
    }
}

/// Runs the two-phase baseline and classifies every allocation site as
/// suspect or proved-safe.
///
/// Suspect seeds are the sites in scope at any possibly-failing (or
/// undecidable) `requires` check; the set is then closed over weakly
/// connected components of the points-to heap, because a check on one
/// object can be caused by state reachable from any heap neighbour (e.g.
/// closing a JDBC connection transitively closes its statements).
///
/// # Errors
///
/// Fails when the program cannot be lowered to a CFG or references unknown
/// library members — callers should fall back to treating every site as
/// suspect (i.e. no pruning).
pub fn verify_with_suspects(program: &Program, spec: &Spec) -> Result<SiteVerdicts, BaselineError> {
    let cfg = Cfg::build(program, "main").map_err(|e| BaselineError(e.to_string()))?;
    let pt = points_to::analyze(&cfg, spec, program)?;
    let (report, seeds) = typestate::analyze_with_suspects(&cfg, spec, &pt)?;
    let suspects = close_over_heap(&pt, seeds);
    Ok(SiteVerdicts { report, suspects })
}

/// Closes a seed set over the undirected site graph induced by the
/// points-to heap (`owner --field--> target` connects `owner` and
/// `target`).
fn close_over_heap(pt: &points_to::PointsTo, seeds: BTreeSet<Site>) -> BTreeSet<Site> {
    let mut adj: HashMap<Site, BTreeSet<Site>> = HashMap::new();
    for ((owner, _field), targets) in &pt.heap {
        for &t in targets {
            adj.entry(*owner).or_default().insert(t);
            adj.entry(t).or_default().insert(*owner);
        }
    }
    let mut closed = seeds.clone();
    let mut queue: VecDeque<Site> = seeds.into_iter().collect();
    while let Some(s) = queue.pop_front() {
        if let Some(ns) = adj.get(&s) {
            for &n in ns {
                if closed.insert(n) {
                    queue.push_back(n);
                }
            }
        }
    }
    closed
}
