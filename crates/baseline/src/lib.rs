//! # hetsep-baseline
//!
//! An ESP-style **two-phase** typestate verifier, used as the comparison
//! point of the paper's related-work discussion (Das, Lerner & Seigle,
//! PLDI 2002):
//!
//! 1. a flow-insensitive, Andersen-style [`points_to`] analysis over
//!    allocation sites, then
//! 2. a flow-sensitive [`typestate`] propagation in which each allocation
//!    site carries one state from the lattice `Open < Top > Closed`.
//!
//! The crucial limitation this reproduces (paper Fig. 3): because the
//! pointer analysis runs *first* and abstracts objects by allocation site,
//! the typestate phase must use **weak updates** whenever a site may denote
//! more than one object — in particular for any allocation inside a loop.
//! The separation-based engine (`hetsep-core`), by contrast, materializes a
//! single chosen object and keeps strong updates.
//!
//! # Example
//!
//! ```
//! let program = hetsep_ir::parse_program(
//!     "program P uses IOStreams; void main() {\n\
//!      while (?) {\n\
//!        File f = new File();\n\
//!        f.read();\n\
//!        f.close();\n\
//!      }\n}",
//! )
//! .unwrap();
//! let spec = hetsep_easl::builtin::iostreams();
//! let report = hetsep_baseline::verify(&program, &spec).unwrap();
//! // ESP-style analysis cannot verify the Fig. 3 loop: false alarm.
//! assert_eq!(report.errors.len(), 1);
//! ```

pub mod points_to;
pub mod typestate;

use std::fmt;

use hetsep_easl::ast::Spec;
use hetsep_ir::cfg::Cfg;
use hetsep_ir::Program;

/// An error reported by the baseline, attributed to a source line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineErrorReport {
    /// 1-based source line.
    pub line: u32,
    /// Description.
    pub label: String,
}

impl fmt::Display for BaselineErrorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: possible error: {}", self.line, self.label)
    }
}

/// The baseline's verification result.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Per-line deduplicated reports.
    pub errors: Vec<BaselineErrorReport>,
    /// Number of allocation sites discovered.
    pub sites: usize,
    /// Number of dataflow iterations performed by the typestate phase.
    pub iterations: usize,
}

impl BaselineReport {
    /// Whether the baseline verified the program.
    pub fn verified(&self) -> bool {
        self.errors.is_empty()
    }
}

/// A failure while setting up the baseline analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError(pub String);

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline error: {}", self.0)
    }
}

impl std::error::Error for BaselineError {}

/// Runs the two-phase baseline verifier.
///
/// # Errors
///
/// Fails when the program cannot be lowered to a CFG or references unknown
/// library members.
pub fn verify(program: &Program, spec: &Spec) -> Result<BaselineReport, BaselineError> {
    let cfg = Cfg::build(program, "main").map_err(|e| BaselineError(e.to_string()))?;
    let pt = points_to::analyze(&cfg, spec, program)?;
    typestate::analyze(&cfg, spec, &pt)
}
