//! Phase 1: flow-insensitive, Andersen-style points-to analysis over
//! allocation sites.
//!
//! Objects are abstracted by their allocation site (a CFG edge performing a
//! `new` or a call to an allocating library method). The analysis computes
//! `var → sites` and `(site, field) → sites` maps by iterating subset
//! constraints to a fixpoint, interpreting Easl constructor and method
//! bodies for their reference effects. This is the *client-independent,
//! up-front* pointer analysis that the paper contrasts with its integrated
//! approach.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use hetsep_easl::ast::{EaslMethod, EaslStmt, Path, RefRhs, ReturnValue, Spec};
use hetsep_ir::cfg::{Cfg, CfgOp};
use hetsep_ir::{Arg, Program};

use crate::BaselineError;

/// An allocation site: the CFG edge index of the allocating operation.
pub type Site = usize;

/// Points-to results.
#[derive(Debug, Clone, Default)]
pub struct PointsTo {
    /// Variable → sites it may point to.
    pub var: HashMap<String, BTreeSet<Site>>,
    /// (site, field name) → sites the field may point to.
    pub heap: HashMap<(Site, String), BTreeSet<Site>>,
    /// Site → class allocated there.
    pub site_class: HashMap<Site, String>,
    /// Sites whose allocation executes at most once (not inside a loop):
    /// eligible for strong updates in the typestate phase.
    pub singleton: HashSet<Site>,
}

impl PointsTo {
    /// Sites a variable may point to.
    pub fn of_var(&self, var: &str) -> BTreeSet<Site> {
        self.var.get(var).cloned().unwrap_or_default()
    }

    /// Sites reachable from `roots` through `field`.
    pub fn of_field(&self, roots: &BTreeSet<Site>, field: &str) -> BTreeSet<Site> {
        let mut out = BTreeSet::new();
        for &r in roots {
            if let Some(s) = self.heap.get(&(r, field.to_owned())) {
                out.extend(s.iter().copied());
            }
        }
        out
    }

    /// Resolves an Easl path against an environment of root bindings.
    pub fn resolve_path(
        &self,
        env: &HashMap<String, BTreeSet<Site>>,
        path: &Path,
    ) -> BTreeSet<Site> {
        let mut cur = env.get(&path.root).cloned().unwrap_or_default();
        for f in &path.fields {
            cur = self.of_field(&cur, f);
        }
        cur
    }
}

/// Whether the CFG edge `e` lies on a cycle (its target reaches its source).
fn on_cycle(cfg: &Cfg, edge_ix: usize) -> bool {
    let edge = &cfg.edges()[edge_ix];
    let mut seen = vec![false; cfg.node_count()];
    let mut queue = VecDeque::from([edge.to]);
    seen[edge.to] = true;
    while let Some(n) = queue.pop_front() {
        if n == edge.from {
            return true;
        }
        for &out_ix in cfg.out_edges(n) {
            let t = cfg.edges()[out_ix].to;
            if !seen[t] {
                seen[t] = true;
                queue.push_back(t);
            }
        }
    }
    false
}

/// Runs the points-to phase.
///
/// # Errors
///
/// Fails on calls to unknown library classes or methods.
pub fn analyze(cfg: &Cfg, spec: &Spec, program: &Program) -> Result<PointsTo, BaselineError> {
    let mut pt = PointsTo::default();
    // Discover allocation sites and their classes; mark singletons.
    for (ix, edge) in cfg.edges().iter().enumerate() {
        let class = match &edge.op {
            CfgOp::New { class, .. } => Some(class.clone()),
            CfgOp::CallLib { recv, method, .. } => {
                // Class determined lazily below; here we only know for calls
                // once the receiver's sites are known. Use the declared
                // method's allocation class, searched across all classes
                // compatible with the receiver later. For site discovery we
                // conservatively scan every spec class with this method.
                let _ = (recv, method);
                None
            }
            _ => None,
        };
        if let Some(c) = class {
            pt.site_class.insert(ix, c);
            if !on_cycle(cfg, ix) {
                pt.singleton.insert(ix);
            }
        }
    }
    let _ = program;

    // Fixpoint over subset constraints.
    loop {
        let before = snapshot(&pt);
        for (ix, edge) in cfg.edges().iter().enumerate() {
            match &edge.op {
                CfgOp::New { dst, class, args } => {
                    pt.site_class.insert(ix, class.clone());
                    if let Some(d) = dst {
                        pt.var.entry(d.clone()).or_default().insert(ix);
                    }
                    if let Some(cls) = spec.class(class) {
                        let env = ctor_env(&pt, ix, &cls.ctor, args);
                        interpret_ref_effects(&mut pt, spec, &cls.ctor, &env, None)?;
                    }
                }
                CfgOp::AssignVar { dst, src } => {
                    let s = pt.of_var(src);
                    pt.var.entry(dst.clone()).or_default().extend(s);
                }
                CfgOp::LoadField { dst, src, field } => {
                    let roots = pt.of_var(src);
                    let s = pt.of_field(&roots, field);
                    pt.var.entry(dst.clone()).or_default().extend(s);
                }
                CfgOp::StoreField {
                    dst,
                    field,
                    src: Some(src),
                } => {
                    let owners = pt.of_var(dst);
                    let values = pt.of_var(src);
                    for o in owners {
                        pt.heap
                            .entry((o, field.clone()))
                            .or_default()
                            .extend(values.iter().copied());
                    }
                }
                CfgOp::CallLib {
                    result,
                    recv,
                    method,
                    args,
                } => {
                    let recv_sites = pt.of_var(recv);
                    for site in recv_sites.clone() {
                        let Some(class) = pt.site_class.get(&site).cloned() else {
                            continue;
                        };
                        let Some(cls) = spec.class(&class) else {
                            continue;
                        };
                        let Some(m) = cls.method(method) else {
                            return Err(BaselineError(format!(
                                "line {}: class `{class}` has no method `{method}`",
                                edge.line
                            )));
                        };
                        let mut env: HashMap<String, BTreeSet<Site>> = HashMap::new();
                        env.insert("this".into(), BTreeSet::from([site]));
                        bind_params(&pt, &mut env, m, args);
                        // An allocating call: the fresh object lives at this
                        // call's site.
                        let alloc = m
                            .body
                            .iter()
                            .find_map(|s| match s {
                                EaslStmt::Alloc { var, class, .. } => {
                                    Some((var.clone(), class.clone()))
                                }
                                _ => None,
                            });
                        if let Some((var, alloc_class)) = &alloc {
                            pt.site_class.insert(ix, alloc_class.clone());
                            if !on_cycle(cfg, ix) {
                                pt.singleton.insert(ix);
                            }
                            env.insert(var.clone(), BTreeSet::from([ix]));
                        }
                        let returned =
                            interpret_ref_effects(&mut pt, spec, m, &env, Some(ix))?;
                        if let (Some(r), Some(sites)) = (result, returned) {
                            pt.var.entry(r.clone()).or_default().extend(sites);
                        }
                    }
                }
                _ => {}
            }
        }
        if snapshot(&pt) == before {
            return Ok(pt);
        }
    }
}

fn snapshot(pt: &PointsTo) -> (usize, usize) {
    (
        pt.var.values().map(BTreeSet::len).sum::<usize>(),
        pt.heap.values().map(BTreeSet::len).sum::<usize>(),
    )
}

fn ctor_env(
    pt: &PointsTo,
    site: Site,
    ctor: &EaslMethod,
    args: &[Arg],
) -> HashMap<String, BTreeSet<Site>> {
    let mut env: HashMap<String, BTreeSet<Site>> = HashMap::new();
    env.insert("this".into(), BTreeSet::from([site]));
    bind_params(pt, &mut env, ctor, args);
    env
}

fn bind_params(
    pt: &PointsTo,
    env: &mut HashMap<String, BTreeSet<Site>>,
    method: &EaslMethod,
    args: &[Arg],
) {
    for ((pname, pclass), arg) in method.params.iter().zip(args) {
        if pclass == "String" {
            continue;
        }
        let sites = match arg {
            Arg::Var(v) => pt.of_var(v),
            _ => BTreeSet::new(),
        };
        env.insert(pname.clone(), sites);
    }
}

/// Interprets a method body for its reference effects (field stores, set
/// adds, nested constructors), returning the sites of the returned value.
fn interpret_ref_effects(
    pt: &mut PointsTo,
    spec: &Spec,
    method: &EaslMethod,
    env: &HashMap<String, BTreeSet<Site>>,
    alloc_site: Option<Site>,
) -> Result<Option<BTreeSet<Site>>, BaselineError> {
    let mut env = env.clone();
    let mut returned: Option<BTreeSet<Site>> = None;
    interpret_stmts(pt, spec, &method.body, &mut env, alloc_site, &mut returned)?;
    Ok(returned)
}

fn interpret_stmts(
    pt: &mut PointsTo,
    spec: &Spec,
    stmts: &[EaslStmt],
    env: &mut HashMap<String, BTreeSet<Site>>,
    alloc_site: Option<Site>,
    returned: &mut Option<BTreeSet<Site>>,
) -> Result<(), BaselineError> {
    for stmt in stmts {
        match stmt {
            EaslStmt::AssignRef {
                target,
                field,
                value,
            } => {
                let owners = pt.resolve_path(env, target);
                let values = match value {
                    RefRhs::Null => BTreeSet::new(),
                    RefRhs::Path(p) => pt.resolve_path(env, p),
                };
                for o in owners {
                    pt.heap
                        .entry((o, field.clone()))
                        .or_default()
                        .extend(values.iter().copied());
                }
            }
            EaslStmt::SetAdd {
                target,
                field,
                elem,
            } => {
                let owners = pt.resolve_path(env, target);
                let values = pt.resolve_path(env, elem);
                for o in owners {
                    pt.heap
                        .entry((o, field.clone()))
                        .or_default()
                        .extend(values.iter().copied());
                }
            }
            EaslStmt::Alloc { var, class, args } => {
                let Some(site) = alloc_site else {
                    continue;
                };
                env.insert(var.clone(), BTreeSet::from([site]));
                if let Some(cls) = spec.class(class) {
                    let mut ctor_env: HashMap<String, BTreeSet<Site>> = HashMap::new();
                    ctor_env.insert("this".into(), BTreeSet::from([site]));
                    for ((pname, pclass), apath) in cls
                        .ctor
                        .params
                        .iter()
                        .filter(|(_, t)| t != "String")
                        .zip(args)
                    {
                        let _ = pclass;
                        ctor_env.insert(pname.clone(), pt.resolve_path(env, apath));
                    }
                    let body = cls.ctor.body.clone();
                    interpret_stmts(pt, spec, &body, &mut ctor_env.clone(), None, &mut None)?;
                }
            }
            EaslStmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                interpret_stmts(pt, spec, then_branch, env, alloc_site, returned)?;
                interpret_stmts(pt, spec, else_branch, env, alloc_site, returned)?;
            }
            EaslStmt::Foreach {
                var,
                target,
                field,
                body,
            } => {
                let owners = pt.resolve_path(env, target);
                let elems = pt.of_field(&owners, field);
                let saved = env.insert(var.clone(), elems);
                interpret_stmts(pt, spec, body, env, alloc_site, returned)?;
                match saved {
                    Some(s) => {
                        env.insert(var.clone(), s);
                    }
                    None => {
                        env.remove(var);
                    }
                }
            }
            EaslStmt::Return(Some(ReturnValue::Path(p))) => {
                *returned = Some(pt.resolve_path(env, p));
            }
            EaslStmt::Return(_)
            | EaslStmt::Requires(_)
            | EaslStmt::AssignBool { .. }
            | EaslStmt::SetClear { .. } => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsep_ir::parse_program;

    fn analyze_src(src: &str) -> (Cfg, PointsTo) {
        let p = parse_program(src).unwrap();
        let spec = hetsep_easl::builtin::by_name(&p.uses).unwrap();
        let cfg = Cfg::build(&p, "main").unwrap();
        let pt = analyze(&cfg, &spec, &p).unwrap();
        (cfg, pt)
    }

    #[test]
    fn direct_allocation_and_copy() {
        let (_cfg, pt) = analyze_src(
            "program P uses IOStreams; void main() {\n\
             InputStream a = new InputStream();\n\
             InputStream b = a;\n}",
        );
        assert_eq!(pt.of_var("a").len(), 1);
        assert_eq!(pt.of_var("a"), pt.of_var("b"));
        let site = *pt.of_var("a").iter().next().unwrap();
        assert_eq!(pt.site_class[&site], "InputStream");
        assert!(pt.singleton.contains(&site));
    }

    #[test]
    fn loop_allocation_not_singleton() {
        let (_cfg, pt) = analyze_src(
            "program P uses IOStreams; void main() {\n\
             while (?) {\n\
             File f = new File();\n\
             f.close();\n\
             }\n}",
        );
        let site = *pt.of_var("f").iter().next().unwrap();
        assert!(!pt.singleton.contains(&site), "loop allocations are summaries");
    }

    #[test]
    fn library_allocating_call_creates_site() {
        let (_cfg, pt) = analyze_src(
            "program P uses JDBC; void main() {\n\
             ConnectionManager cm = new ConnectionManager();\n\
             Connection con = cm.getConnection();\n\
             Statement st = cm.createStatement(con);\n\
             ResultSet rs = st.executeQuery(\"q\");\n}",
        );
        assert_eq!(pt.of_var("con").len(), 1);
        assert_eq!(pt.of_var("st").len(), 1);
        assert_eq!(pt.of_var("rs").len(), 1);
        let st_site = *pt.of_var("st").iter().next().unwrap();
        assert_eq!(pt.site_class[&st_site], "Statement");
        // Heap edges: the connection's statements set contains st; the
        // statement's myResultSet points to rs.
        let con_site = *pt.of_var("con").iter().next().unwrap();
        let rs_site = *pt.of_var("rs").iter().next().unwrap();
        assert!(pt.heap[&(con_site, "statements".to_owned())].contains(&st_site));
        assert!(pt.heap[&(st_site, "myResultSet".to_owned())].contains(&rs_site));
    }

    #[test]
    fn field_store_and_load_through_program_class() {
        let (_cfg, pt) = analyze_src(
            "program P uses IOStreams;\n\
             class Holder { InputStream s; }\n\
             void main() {\n\
             Holder h = new Holder();\n\
             InputStream f = new InputStream();\n\
             h.s = f;\n\
             InputStream g = h.s;\n}",
        );
        assert_eq!(pt.of_var("g"), pt.of_var("f"));
    }

    #[test]
    fn two_streams_stay_apart() {
        let (_cfg, pt) = analyze_src(
            "program P uses IOStreams; void main() {\n\
             InputStream a = new InputStream();\n\
             InputStream b = new InputStream();\n}",
        );
        assert_eq!(pt.of_var("a").len(), 1);
        assert_eq!(pt.of_var("b").len(), 1);
        assert_ne!(pt.of_var("a"), pt.of_var("b"));
    }
}
