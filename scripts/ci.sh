#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, lint-clean clippy,
# warning-free rustdoc, and a smoke run of the quickstart example.
# Run from the repository root. Works fully offline (no registry access).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
# Word-parallel Kleene kernels: the exhaustive truth-table identities and
# stride-padding leak checks must also pass under release codegen (the
# bit-twiddling kernels are exactly what optimization rewrites hardest).
# The block (4x u64 unrolled) kernel paths run twice: once on the portable
# code and once with the `simd` feature's AVX2 dispatch enabled — both must
# agree with the per-word kernels lane for lane.
for features in "" "--features simd"; do
    # shellcheck disable=SC2086
    cargo test -q -p hetsep-tvl --release $features --test properties -- \
        word_kernels_match_scalar_truth_tables_in_every_lane \
        stride_padding_bits_never_leak \
        block_kernels_match_word_kernels_in_every_lane \
        block_scan_kernels_respect_stride_padding
done
cargo test -q -p hetsep-tvl --release --test bulk_grow

# Scheduler determinism matrix: the scenario-suite byte-identity contracts
# must hold whatever the outer (subproblem) and inner (intra-batch
# transfer fan-out) worker counts are. The expensive generated workloads
# stay out of the matrix; everything else runs under both env settings.
for t in 1 4; do
    HETSEP_THREADS=$t HETSEP_INTRA_THREADS=$t \
        cargo test -q -p hetsep-core --release --test determinism -- \
        --skip generated_workloads
done
cargo clippy --workspace -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
cargo run -q -p hetsep --example quickstart --release > /dev/null

# Static pre-verification gate: the shipped example programs must lint
# clean (no E-codes, no warnings).
for prog in examples/programs/*.hsp; do
    cargo run -q -p hetsep --bin hetsep --release -- lint "$prog" --quiet --deny warnings
done
# The bundled benchmarks are linted against a golden instead: the suite
# deliberately contains buggy programs (KernelBench1's iterator misuse is
# a true positive for the flow-sensitive W105), so the gate pins the exact
# diagnostic stream rather than requiring silence. New or vanished
# warnings both fail the diff.
cargo run -q -p hetsep --bin hetsep --release -- \
    lint --suite --format json --quiet | diff -u scripts/lint_quick.golden -

# Transfer-cache / reporting golden: a quick Table 3 subset must keep its
# semantic columns byte-identical to the committed golden (wall-clock
# columns deliberately excluded). Guards the exact transfer cache and the
# reported/complete accounting against silent drift.
table3_quick_json="$(mktemp)"
table3_quick() {
    sed 's/"subproblems".*//' "$table3_quick_json" | sed -n \
        's/.*"benchmark": "\([^"]*\)", "mode": "\([^"]*\)", "space": \([0-9]*\), "visits": \([0-9]*\),.*"reported": \([^,]*\), "complete": \([^,]*\),.*/\1 \2 space=\3 visits=\4 reported=\5 complete=\6/p' \
        | diff -u scripts/table3_quick.golden -
}
cargo run -q -p hetsep-bench --bin table3 --release -- \
    --threads 1 --json "$table3_quick_json" ISPath KernelBench1 db SharedLibLoop > /dev/null
table3_quick
# Same subset with the intra-batch transfer fan-out forced on: partition
# workers may only change wall-clock, never a semantic column.
HETSEP_INTRA_THREADS=4 cargo run -q -p hetsep-bench --bin table3 --release -- \
    --threads 1 --json "$table3_quick_json" ISPath KernelBench1 db SharedLibLoop > /dev/null
table3_quick
# And the summaries A/B: `--no-summaries` is the inlining-equivalent
# baseline, so the semantic columns must be byte-identical against the
# very same golden — only wall-clock and the summary counters may move.
cargo run -q -p hetsep-bench --bin table3 --release -- \
    --threads 1 --no-summaries --json "$table3_quick_json" \
    ISPath KernelBench1 db SharedLibLoop > /dev/null
table3_quick
rm -f "$table3_quick_json"

# Per-procedure summary gate: the shared-library bench asserts internally
# that verdicts/visits/space are identical across baseline (summaries
# off), cold, and warm runs, that the in-run memo and the cross-run store
# both hit, and that every region evaluation is exactly one hit or miss.
summaries_json="$(mktemp)"
cargo run -q -p hetsep-bench --bin summaries --release -- \
    --json "$summaries_json" --repeats 1 > /dev/null
rm -f "$summaries_json"

# Corpus scheduler smoke gate: a 50-job generated corpus run twice through
# a persisted cross-job cache. Both runs must reproduce the committed
# verdict summary (the summary line is schedule- and cache-independent by
# the scheduler's determinism contract), and the warm run must replay from
# the cache: identical summary with zero shared-store misses.
corpus_cache="$(mktemp -u)"
cargo run -q -p hetsep --bin hetsep --release -- \
    corpus --jobs 50 --seed 42 --workers 4 --cache "$corpus_cache" --quiet \
    | diff -u scripts/corpus_quick.golden -
cargo run -q -p hetsep --bin hetsep --release -- \
    corpus --jobs 50 --seed 42 --workers 4 --cache "$corpus_cache" --quiet \
    | diff -u scripts/corpus_quick.golden -
rm -f "$corpus_cache"

# Verification-daemon smoke gate: a canned NDJSON session (load a buggy
# program, verify cold, re-verify warm, load the edited fix, re-verify,
# lint twice, an unknown-name error, status, shutdown) must reproduce the
# committed transcript byte-for-byte. Responses are deliberately
# wall-clock-free, so this pins verdicts AND the warm-replay cache
# accounting (the warm verify's shared_hits/cache_misses are part of the
# golden). `--preanalysis` makes the pruning columns live: the fixed
# program's only subproblem is pruned (zero visits), and the repeated lint
# must come from the workspace lint cache (`lint_cache_hits` in status).
cargo run -q -p hetsep --bin hetsep --release -- \
    serve --quiet --preanalysis < scripts/serve_session.ndjson \
    | diff -u scripts/serve_quick.golden -
