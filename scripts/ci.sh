#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and lint-clean clippy.
# Run from the repository root. Works fully offline (no registry access).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
