#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, lint-clean clippy,
# warning-free rustdoc, and a smoke run of the quickstart example.
# Run from the repository root. Works fully offline (no registry access).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
cargo run -q -p hetsep --example quickstart --release > /dev/null

# Static pre-verification gate: the shipped example programs and every
# bundled benchmark must lint clean (no E-codes, no warnings).
for prog in examples/programs/*.hsp; do
    cargo run -q -p hetsep --bin hetsep --release -- lint "$prog" --quiet --deny warnings
done
cargo run -q -p hetsep --bin hetsep --release -- lint --suite --quiet --deny warnings
