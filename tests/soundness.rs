//! Property-based soundness tests: on randomly generated loop-free stream
//! programs, every error that *concretely* occurs on some execution path
//! must be reported by the verifier — in vanilla mode and under separation.
//!
//! The oracle enumerates all non-deterministic paths of the generated
//! program and simulates the IOStreams semantics directly.

use std::collections::{BTreeSet, HashMap};

use proptest::prelude::*;

use hetsep::core::{verify, EngineConfig, Mode};
use hetsep::strategy::parse_strategy;

/// One generated statement over a fixed set of stream variables.
#[derive(Debug, Clone)]
enum Op {
    New(usize),
    Read(usize),
    Close(usize),
    Copy(usize, usize),
    /// Non-deterministic branch over two sub-sequences.
    Branch(Vec<Op>, Vec<Op>),
}

const VARS: usize = 3;

fn op_strategy(depth: u32) -> impl Strategy<Value = Op> {
    let leaf = prop_oneof![
        (0..VARS).prop_map(Op::New),
        (0..VARS).prop_map(Op::Read),
        (0..VARS).prop_map(Op::Close),
        (0..VARS, 0..VARS).prop_map(|(a, b)| Op::Copy(a, b)),
    ];
    leaf.prop_recursive(depth, 16, 4, |inner| {
        (
            prop::collection::vec(inner.clone(), 0..4),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(a, b)| Op::Branch(a, b))
    })
}

fn program_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(op_strategy(2), 1..10)
}

/// Renders the op sequence as client-language source (one op per line).
fn render(ops: &[Op]) -> String {
    let mut out = String::from("program Gen uses IOStreams;\nvoid main() {\n");
    for v in 0..VARS {
        out.push_str(&format!("    InputStream v{v} = null;\n"));
    }
    fn emit(ops: &[Op], out: &mut String, indent: usize) {
        let pad = "    ".repeat(indent);
        for op in ops {
            match op {
                Op::New(v) => out.push_str(&format!("{pad}v{v} = new InputStream();\n")),
                Op::Read(v) => out.push_str(&format!("{pad}v{v}.read();\n")),
                Op::Close(v) => out.push_str(&format!("{pad}v{v}.close();\n")),
                Op::Copy(a, b) => out.push_str(&format!("{pad}v{a} = v{b};\n")),
                Op::Branch(t, e) => {
                    out.push_str(&format!("{pad}if (?) {{\n"));
                    emit(t, out, indent + 1);
                    out.push_str(&format!("{pad}}} else {{\n"));
                    emit(e, out, indent + 1);
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
        }
    }
    emit(ops, &mut out, 1);
    out.push_str("}\n");
    out
}

#[derive(Clone)]
struct ConcState {
    vars: HashMap<String, Option<usize>>,
    closed: Vec<bool>,
}

fn step(t: &str, line_no: u32, st: &mut ConcState, errors: &mut BTreeSet<u32>) {
    if let Some(rest) = t.strip_suffix(" = new InputStream();") {
        st.closed.push(false);
        let id = st.closed.len() - 1;
        st.vars.insert(rest.trim().to_owned(), Some(id));
    } else if let Some(var) = t.strip_suffix(".read();") {
        if let Some(Some(obj)) = st.vars.get(var.trim()) {
            if st.closed[*obj] {
                errors.insert(line_no);
            }
        }
    } else if let Some(var) = t.strip_suffix(".close();") {
        if let Some(Some(obj)) = st.vars.get(var.trim()).cloned() {
            st.closed[obj] = true;
        }
    } else if t.starts_with("InputStream ") {
        // declaration with null initializer
        let var = t.split(' ').nth(1).unwrap().to_owned();
        st.vars.insert(var, None);
    } else if t.contains(" = v") && t.ends_with(';') {
        let mut parts = t.trim_end_matches(';').split(" = ");
        let dst = parts.next().unwrap().trim().to_owned();
        let src = parts.next().unwrap().trim().to_owned();
        let val = st.vars.get(&src).cloned().flatten();
        st.vars.insert(dst, val);
    }
}

fn indent_of(s: &str) -> usize {
    s.len() - s.trim_start().len()
}

/// For the `if` at `if_ix`, returns (index of its `} else {`, index of its
/// closing `}`).
fn find_branch(lines: &[(u32, String)], if_ix: usize) -> (usize, usize) {
    let base_indent = indent_of(&lines[if_ix].1);
    let mut then_end = None;
    for (k, (_, text)) in lines.iter().enumerate().skip(if_ix + 1) {
        if indent_of(text) == base_indent {
            let t = text.trim();
            if t.starts_with("} else {") && then_end.is_none() {
                then_end = Some(k);
            } else if t == "}" {
                return (then_end.expect("else before end"), k);
            }
        }
    }
    panic!("unterminated branch");
}

/// Interprets `lines[ix..end]`, forking at branches; accumulates error
/// lines and returns the possible final states.
fn interp(
    lines: &[(u32, String)],
    mut ix: usize,
    end: usize,
    st: ConcState,
    errors: &mut BTreeSet<u32>,
) -> Vec<ConcState> {
    let mut states = vec![st];
    while ix < end {
        let (line_no, text) = &lines[ix];
        let t = text.trim();
        if t.starts_with("if (?) {") {
            let (then_end, else_end) = find_branch(lines, ix);
            let mut next = Vec::new();
            for s in states {
                next.extend(interp(lines, ix + 1, then_end, s.clone(), errors));
                next.extend(interp(lines, then_end + 1, else_end, s, errors));
            }
            states = next;
            ix = else_end + 1;
            continue;
        }
        for s in &mut states {
            step(t, *line_no, s, errors);
        }
        ix += 1;
    }
    states
}

/// Enumerates every path of the rendered program; returns the set of source
/// lines at which a closed stream is read.
fn oracle(source: &str) -> BTreeSet<u32> {
    let lines: Vec<(u32, String)> = source
        .lines()
        .enumerate()
        .map(|(i, l)| (i as u32 + 1, l.to_owned()))
        .collect();
    let mut errors = BTreeSet::new();
    let body_start = lines
        .iter()
        .position(|(_, l)| l.contains("void main()"))
        .unwrap()
        + 1;
    let body_end = lines.len() - 1; // final "}"
    let st = ConcState {
        vars: HashMap::new(),
        closed: Vec::new(),
    };
    interp(&lines, body_start, body_end, st, &mut errors);
    errors
}

fn reported_lines(source: &str, mode: &Mode) -> BTreeSet<u32> {
    let program = hetsep::ir::parse_program(source).unwrap();
    let spec = hetsep::easl::builtin::iostreams();
    let report = verify(&program, &spec, mode, &EngineConfig::default()).unwrap();
    report.errors.iter().map(|e| e.line).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness: every concretely occurring error line is reported.
    #[test]
    fn vanilla_reports_every_concrete_error(ops in program_strategy()) {
        let source = render(&ops);
        let truth = oracle(&source);
        let reported = reported_lines(&source, &Mode::Vanilla);
        prop_assert!(
            truth.is_subset(&reported),
            "missed errors {truth:?} vs reported {reported:?} in:\n{source}"
        );
    }

    /// Separation with a covering strategy is equally sound.
    #[test]
    fn separation_reports_every_concrete_error(ops in program_strategy()) {
        let source = render(&ops);
        let truth = oracle(&source);
        let strategy = parse_strategy(
            hetsep::strategy::builtin::IOSTREAM_SINGLE
        ).unwrap();
        let reported = reported_lines(&source, &Mode::simultaneous(strategy));
        prop_assert!(
            truth.is_subset(&reported),
            "missed errors {truth:?} vs reported {reported:?} in:\n{source}"
        );
    }

    /// On branch-free programs the verifier is exact: reported = truth.
    #[test]
    fn vanilla_is_exact_on_straightline(ops in prop::collection::vec(op_strategy(0), 1..12)) {
        let source = render(&ops);
        let truth = oracle(&source);
        let reported = reported_lines(&source, &Mode::Vanilla);
        prop_assert_eq!(
            &truth, &reported,
            "straight-line mismatch in:\n{}", source
        );
    }
}
