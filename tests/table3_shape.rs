//! Integration tests asserting the qualitative *shape* of the paper's
//! Table 3 — who reports what, and who wins on space — on the shipped
//! benchmarks.
//!
//! The fast tests run the light benchmarks; `full_table3` replays every row
//! (several minutes) and is `#[ignore]`d by default:
//! `cargo test -p hetsep --test table3_shape -- --ignored` runs it.

use hetsep::harness::{run_benchmark, run_mode, table3_config};
use hetsep::suite::{self, TableMode};

fn assert_expectations(name: &str) {
    let bench = suite::by_name(name).unwrap();
    let config = table3_config();
    let rows = run_benchmark(&bench, &config).unwrap();
    for (row, expected) in rows.iter().zip(&bench.expected_reported) {
        assert_eq!(
            row.reported, *expected,
            "{name}/{}: reported {:?}, expected {:?}",
            row.mode, row.reported, expected
        );
        assert_eq!(
            row.complete,
            row.reported.is_some(),
            "{name}/{}: `complete` must mirror whether a count was reported",
            row.mode
        );
    }
}

#[test]
fn ispath_all_modes_verify() {
    assert_expectations("ISPath");
}

#[test]
fn input_stream5_vanilla_false_alarm_removed_by_separation() {
    let bench = suite::by_name("InputStream5").unwrap();
    let config = table3_config();
    let vanilla = run_mode(&bench, TableMode::Vanilla, &config).unwrap();
    assert_eq!(vanilla.reported, Some(1), "vanilla must report a false alarm");
    let single = run_mode(&bench, TableMode::Single, &config).unwrap();
    assert_eq!(single.reported, Some(0), "separation must verify");
}

#[test]
fn input_stream5b_error_found_everywhere() {
    assert_expectations("InputStream5b");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive; run under --release")]
fn input_stream6_false_alarm_persists() {
    assert_expectations("InputStream6");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive; run under --release")]
fn jdbc_example_error_found_everywhere() {
    assert_expectations("JDBCExample");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive; run under --release")]
fn jdbc_example_fixed_verifies_everywhere() {
    assert_expectations("JDBCExampleFixed");
}

#[test]
fn db_verifies_everywhere() {
    assert_expectations("db");
}

#[test]
fn kernel_bench1_error_found_everywhere() {
    assert_expectations("KernelBench1");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive; run under --release")]
fn jdbc_example_separation_space_beats_vanilla() {
    let bench = suite::by_name("JDBCExample").unwrap();
    let config = table3_config();
    let vanilla = run_mode(&bench, TableMode::Vanilla, &config).unwrap();
    let single = run_mode(&bench, TableMode::Single, &config).unwrap();
    assert!(
        single.space < vanilla.space,
        "single-mode peak space ({}) must be below vanilla ({})",
        single.space,
        vanilla.space
    );
    // The paper's on-demand claim: the average cost of one subproblem is
    // far below the vanilla run.
    assert!(
        single.avg_visits_per_subproblem < vanilla.visits as f64,
        "avg per-subproblem visits ({}) must be below vanilla total ({})",
        single.avg_visits_per_subproblem,
        vanilla.visits
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive; run under --release")]
fn kernel_bench3_vanilla_explodes_separation_finishes() {
    let bench = suite::by_name("KernelBench3").unwrap();
    let config = table3_config();
    let vanilla = run_mode(&bench, TableMode::Vanilla, &config).unwrap();
    assert_eq!(vanilla.reported, None, "vanilla must exceed budget (the `-` row)");
    let single = run_mode(&bench, TableMode::Single, &config).unwrap();
    assert_eq!(single.reported, Some(1), "separation finds the real error");
    assert!(single.space * 10 < vanilla.space);
}

#[test]
#[ignore = "runs every Table 3 row; several minutes"]
fn full_table3() {
    for bench in suite::all() {
        let config = table3_config();
        let rows = run_benchmark(&bench, &config).unwrap();
        for (row, expected) in rows.iter().zip(&bench.expected_reported) {
            assert_eq!(
                row.reported, *expected,
                "{}/{}: reported {:?}, expected {:?}",
                bench.name, row.mode, row.reported, expected
            );
        }
    }
}
