//! Cross-crate integration tests: parse → check → translate → verify flows
//! spanning every workspace crate, including the Fig. 3 comparison against
//! the ESP-style baseline and strategy-coverage interplay.

use hetsep::core::{verify, EngineConfig, Mode};
use hetsep::strategy::builtin as strategies;
use hetsep::strategy::parse_strategy;

const FIG3: &str = "program Fig3 uses IOStreams; void main() {\n\
                    while (?) {\n\
                    File f = new File();\n\
                    f.read();\n\
                    f.close();\n\
                    }\n}";

/// The paper's Fig. 3 claim: the separation engine verifies the
/// file-in-a-loop program; the two-phase ESP-style baseline cannot (it is
/// forced into weak updates by the allocation-site abstraction).
#[test]
fn fig3_separation_verifies_where_baseline_false_alarms() {
    let program = hetsep::ir::parse_program(FIG3).unwrap();
    let spec = hetsep::easl::builtin::iostreams();

    let baseline = hetsep::baseline::verify(&program, &spec).unwrap();
    assert_eq!(baseline.errors.len(), 1, "baseline must false-alarm");

    let strategy = parse_strategy(strategies::FILE_SINGLE).unwrap();
    let report = verify(
        &program,
        &spec,
        &Mode::simultaneous(strategy),
        &EngineConfig::default(),
    )
    .unwrap();
    assert!(report.verified(), "{:?}", report.errors);
}

#[test]
fn fig3_vanilla_also_verifies_thanks_to_materialization() {
    // Unlike ESP, even our vanilla mode verifies Fig. 3: the integrated
    // analysis materializes the freshly allocated file each iteration.
    let program = hetsep::ir::parse_program(FIG3).unwrap();
    let spec = hetsep::easl::builtin::iostreams();
    let report = verify(&program, &spec, &Mode::Vanilla, &EngineConfig::default()).unwrap();
    assert!(report.verified(), "{:?}", report.errors);
}

/// The running example of the paper's Fig. 1, condensed: the second
/// `executeQuery` implicitly closes the first ResultSet.
#[test]
fn fig1_bug_found_and_attributed_to_the_use_site() {
    let program = hetsep::ir::parse_program(
        "program Fig1 uses JDBC; void main() {\n\
         ConnectionManager cm = new ConnectionManager();\n\
         Connection con1 = cm.getConnection();\n\
         Statement stmt1 = cm.createStatement(con1);\n\
         ResultSet rs1 = stmt1.executeQuery(\"balances\");\n\
         ResultSet maxRs2 = stmt1.executeQuery(\"max\");\n\
         while (rs1.next()) {\n\
         }\n}",
    )
    .unwrap();
    let spec = hetsep::easl::builtin::jdbc();
    for mode in [
        Mode::Vanilla,
        Mode::separation(parse_strategy(strategies::JDBC_SINGLE).unwrap()),
        Mode::simultaneous(parse_strategy(strategies::JDBC_MULTI).unwrap()),
        Mode::incremental(parse_strategy(strategies::JDBC_INCREMENTAL).unwrap()),
    ] {
        let report = verify(&program, &spec, &mode, &EngineConfig::default()).unwrap();
        assert_eq!(report.errors.len(), 1, "mode {mode}");
        assert_eq!(report.errors[0].line, 7, "mode {mode}");
    }
}

/// Connection.close cascades: statements and result sets become unusable.
#[test]
fn connection_close_cascade_checked_transitively() {
    let program = hetsep::ir::parse_program(
        "program Cascade uses JDBC; void main() {\n\
         ConnectionManager cm = new ConnectionManager();\n\
         Connection con = cm.getConnection();\n\
         Statement st = cm.createStatement(con);\n\
         ResultSet rs = st.executeQuery(\"q\");\n\
         con.close();\n\
         while (rs.next()) {\n\
         }\n}",
    )
    .unwrap();
    let spec = hetsep::easl::builtin::jdbc();
    let strategy = parse_strategy(strategies::JDBC_SINGLE).unwrap();
    let report = verify(
        &program,
        &spec,
        &Mode::separation(strategy),
        &EngineConfig::default(),
    )
    .unwrap();
    assert_eq!(report.errors.len(), 1);
    assert_eq!(report.errors[0].line, 7);
}

/// Iterator invalidation via the CMP spec, verified under separation.
#[test]
fn cmp_invalidated_iterator_detected_and_fresh_one_verifies() {
    let spec = hetsep::easl::builtin::cmp();
    let strategy = parse_strategy(strategies::CMP_SINGLE).unwrap();
    // Correct: re-acquire after modification.
    let ok = hetsep::ir::parse_program(
        "program Ok uses CMP; void main() {\n\
         Collection c = new Collection();\n\
         Iterator it = c.iterator();\n\
         while (it.hasNext()) {\n\
         Element e = it.next();\n\
         }\n\
         Element x = new Element();\n\
         c.add(x);\n\
         Iterator it2 = c.iterator();\n\
         while (it2.hasNext()) {\n\
         Element e2 = it2.next();\n\
         }\n}",
    )
    .unwrap();
    let report = verify(
        &ok,
        &spec,
        &Mode::separation(strategy.clone()),
        &EngineConfig::default(),
    )
    .unwrap();
    assert!(report.verified(), "{:?}", report.errors);
    // Buggy: advance the stale iterator.
    let bad = hetsep::ir::parse_program(
        "program Bad uses CMP; void main() {\n\
         Collection c = new Collection();\n\
         Iterator it = c.iterator();\n\
         Element x = new Element();\n\
         c.add(x);\n\
         Element y = it.next();\n}",
    )
    .unwrap();
    let report = verify(
        &bad,
        &spec,
        &Mode::separation(strategy),
        &EngineConfig::default(),
    )
    .unwrap();
    assert_eq!(report.errors.len(), 1);
    assert_eq!(report.errors[0].line, 6);
}

/// Strategy coverage: a partial strategy (restricted to a class that is
/// never checked) silently verifies nothing — the coverage checker is what
/// warns about this.
#[test]
fn partial_strategy_checks_nothing_and_coverage_detects_it() {
    let program = hetsep::ir::parse_program(
        "program P uses IOStreams; void main() {\n\
         InputStream f = new InputStream();\n\
         f.close();\n\
         f.read();\n}",
    )
    .unwrap();
    let spec = hetsep::easl::builtin::iostreams();
    // A strategy that chooses only Files — InputStreams are never chosen, so
    // the (guarded) checks never fire: partial verification.
    let partial = parse_strategy("strategy Partial { choose some f : File(); }").unwrap();
    let report = verify(
        &program,
        &spec,
        &Mode::simultaneous(partial.clone()),
        &EngineConfig::default(),
    )
    .unwrap();
    assert!(
        report.errors.is_empty(),
        "partial verification skips unchosen objects"
    );
    // Coverage analysis tells us InputStream is not covered.
    let covered = hetsep::strategy::covered_classes(&partial.stages[0]);
    assert!(!covered.contains("InputStream"));
    // The proper strategy covers it and finds the bug.
    let full = parse_strategy(strategies::IOSTREAM_SINGLE).unwrap();
    assert!(hetsep::strategy::covered_classes(&full.stages[0]).contains("InputStream"));
    let report = verify(
        &program,
        &spec,
        &Mode::simultaneous(full),
        &EngineConfig::default(),
    )
    .unwrap();
    assert_eq!(report.errors.len(), 1);
}

/// Incremental verification stops at the first stage that suffices.
#[test]
fn incremental_stops_early_when_first_stage_verifies() {
    let program = hetsep::ir::parse_program(
        "program P uses JDBC; void main() {\n\
         ConnectionManager cm = new ConnectionManager();\n\
         Connection con = cm.getConnection();\n\
         Statement st = cm.createStatement(con);\n\
         ResultSet rs = st.executeQuery(\"q\");\n\
         while (rs.next()) {\n\
         }\n}",
    )
    .unwrap();
    let spec = hetsep::easl::builtin::jdbc();
    let strategy = parse_strategy(strategies::JDBC_INCREMENTAL).unwrap();
    let report = verify(
        &program,
        &spec,
        &Mode::incremental(strategy),
        &EngineConfig::default(),
    )
    .unwrap();
    assert!(report.verified());
    assert_eq!(
        report.stages_run, 1,
        "the ResultSet-only stage suffices for a correct program"
    );
}

/// The baseline and the engine agree on simple definite errors.
#[test]
fn baseline_and_engine_agree_on_simple_errors() {
    let src = "program P uses IOStreams; void main() {\n\
               InputStream a = new InputStream();\n\
               a.close();\n\
               a.read();\n}";
    let program = hetsep::ir::parse_program(src).unwrap();
    let spec = hetsep::easl::builtin::iostreams();
    let b = hetsep::baseline::verify(&program, &spec).unwrap();
    let e = verify(&program, &spec, &Mode::Vanilla, &EngineConfig::default()).unwrap();
    assert_eq!(b.errors.len(), 1);
    assert_eq!(e.errors.len(), 1);
    assert_eq!(b.errors[0].line, e.errors[0].line);
}
