//! Quickstart: parse a client program, verify it against a built-in Easl
//! specification, and print the result.
//!
//! ```sh
//! cargo run -p hetsep --example quickstart
//! ```

use hetsep::core::{MetricsSink, Mode, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small client of the IO-streams library: the second read happens
    // after the stream was closed on one branch.
    let source = r#"
program Quickstart uses IOStreams;

void main() {
    InputStream log = new InputStream();
    log.read();
    if (?) {
        log.close();
    }
    log.read();
    log.close();
}
"#;
    let program = hetsep::ir::parse_program(source)?;
    println!("program `{}` uses spec `{}`", program.name, program.uses);

    // The library's abstract semantics and usage rules, written in Easl
    // (paper Fig. 4 style). Print the relevant class for illustration.
    let spec = hetsep::easl::builtin::iostreams();
    let stream = spec.class("InputStream").expect("spec class");
    println!(
        "InputStream spec: {} fields, {} methods (read requires !closed)",
        stream.fields.len(),
        stream.methods.len()
    );

    // Verify without separation first. The `Verifier` builder is the front
    // door; `Mode::Vanilla` and the default config are its defaults.
    let report = Verifier::new(&program, &spec).run()?;
    println!("\nvanilla verification:");
    for e in &report.errors {
        println!("  {e}");
    }
    println!(
        "  explored {} abstract structures in {:?}",
        report.max_space, report.total_wall
    );

    // And with a per-stream separation strategy, watching the engine
    // through a metrics sink.
    let strategy =
        hetsep::strategy::parse_strategy(hetsep::strategy::builtin::IOSTREAM_SINGLE)?;
    println!("\nstrategy:\n{}", hetsep::strategy::builtin::IOSTREAM_SINGLE.trim());
    let mut sink = MetricsSink::new();
    let report = Verifier::new(&program, &spec)
        .mode(Mode::separation(strategy))
        .sink(&mut sink)
        .run()?;
    println!("separation verification ({} subproblems):", report.subproblems.len());
    for e in &report.errors {
        println!("  {e}");
    }
    println!(
        "  peak structures per subproblem {}, avg visits per subproblem {:.0}",
        report.max_space,
        report.avg_visits_per_subproblem()
    );
    println!(
        "  observed via sink: {} subproblems, {} visits, {} focus applications",
        sink.subproblems(),
        sink.total_visits(),
        sink.phases().get(hetsep::core::Phase::Focus).count
    );
    Ok(())
}
