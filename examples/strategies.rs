//! Separation strategies (paper §3): single choice, multiple choice, and
//! incremental, with their coverage properties (Theorem 1) and cost
//! profiles side by side on one workload.
//!
//! ```sh
//! cargo run -p hetsep --example strategies --release
//! ```

use hetsep::core::{EngineConfig, Mode, Verifier};
use hetsep::strategy::{covered_classes, parse_strategy, theorem1_applies};
use hetsep::suite::generators::{jdbc_client, JdbcWorkload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = jdbc_client(
        "StrategyDemo",
        &JdbcWorkload {
            connections: 4,
            queries_per_connection: 2,
            buggy_connection: Some(1),
            interleaved: true,
            seed: 3,
        },
    );
    let program = hetsep::ir::parse_program(&source)?;
    let spec = hetsep::easl::builtin::jdbc();
    let config = EngineConfig::default();

    println!("workload: 4 overlapping connections, one with the Fig. 1 bug\n");

    for (name, src) in [
        ("single choice", hetsep::strategy::builtin::JDBC_SINGLE),
        ("multiple choice", hetsep::strategy::builtin::JDBC_MULTI),
        ("incremental", hetsep::strategy::builtin::JDBC_INCREMENTAL),
    ] {
        let strategy = parse_strategy(src)?;
        println!("== {name} ==");
        for (ix, stage) in strategy.stages.iter().enumerate() {
            if strategy.stages.len() > 1 {
                println!("  stage {}:", ix + 1);
            }
            for op in &stage.choices {
                println!("    {op};");
            }
            let covered: Vec<String> = {
                let mut v: Vec<String> = covered_classes(stage).into_iter().collect();
                v.sort();
                v
            };
            println!(
                "    Theorem 1 applies: {}; provably covered: {covered:?}",
                theorem1_applies(stage)
            );
        }
        let mode = if strategy.is_incremental() {
            Mode::incremental(strategy)
        } else {
            Mode::separation(strategy)
        };
        let report = Verifier::new(&program, &spec)
            .mode(mode)
            .config(config.clone())
            .run()?;
        println!(
            "    result: {} error(s), {} subproblem(s), space {}, {} visits (avg {:.0}/subproblem)\n",
            report.errors.len(),
            report.subproblems.len(),
            report.max_space,
            report.total_visits,
            report.avg_visits_per_subproblem()
        );
    }

    // Vanilla for comparison.
    let report = Verifier::new(&program, &spec).config(config).run()?;
    println!(
        "== vanilla (no separation) ==\n    result: {} error(s), space {}, {} visits",
        report.errors.len(),
        report.max_space,
        report.total_visits
    );
    Ok(())
}
