//! The paper's Fig. 3: a file allocated, read, and closed inside a loop.
//! The program is correct, but an ESP-style two-phase verifier must merge
//! all loop iterations' files into one allocation site and use weak
//! updates — producing a false alarm. The separation engine materializes a
//! single chosen file and verifies.
//!
//! ```sh
//! cargo run -p hetsep --example file_loop
//! ```

use hetsep::core::{Mode, Verifier};

const FIG3: &str = r#"
program Fig3 uses IOStreams;

void main() {
    while (?) {
        File f = new File();
        f.read();
        f.close();
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = hetsep::ir::parse_program(FIG3)?;
    let spec = hetsep::easl::builtin::iostreams();

    println!("== paper Fig. 3: file read/close in a loop (correct program) ==\n");

    // ESP-style baseline: points-to first, typestate second.
    let baseline = hetsep::baseline::verify(&program, &spec)?;
    println!(
        "ESP-style baseline ({} allocation site(s), {} iterations):",
        baseline.sites, baseline.iterations
    );
    if baseline.verified() {
        println!("  verified");
    }
    for e in &baseline.errors {
        println!("  {e}   <-- false alarm from weak updates");
    }

    // Separation-based verification with a per-file strategy.
    let strategy = hetsep::strategy::parse_strategy(hetsep::strategy::builtin::FILE_SINGLE)?;
    let report = Verifier::new(&program, &spec)
        .mode(Mode::simultaneous(strategy))
        .run()?;
    println!("\nseparation engine (choose some f : File()):");
    if report.verified() {
        println!("  verified — strong updates on the materialized chosen file");
    }
    for e in &report.errors {
        println!("  {e}");
    }
    Ok(())
}
