//! Heterogeneous abstraction visualized (paper Figs. 5 and 7): the concrete
//! heap of the JDBC example at the point before the second query, and the
//! abstract configuration in which the chosen connection's component is
//! tracked precisely while everything else collapses into coarse summaries.
//!
//! ```sh
//! cargo run -p hetsep --example heterogeneous_heap
//! ```

use hetsep::core::concrete::states_at_line;
use hetsep::core::engine::EngineConfig;
use hetsep::core::translate::{translate, TranslateOptions};
use hetsep::core::{MetricsSink, Mode, Phase, Verifier};
use hetsep::strategy::parse_strategy;
use hetsep::tvl::canon::{blur, canonical_key};
use hetsep::tvl::display::to_text;

const PROGRAM: &str = r#"program TwoConnections uses JDBC;

void main() {
    ConnectionManager cm = new ConnectionManager();
    Connection con1 = cm.getConnection();
    Statement stmt1 = cm.createStatement(con1);
    ResultSet rs1 = stmt1.executeQuery("balances");
    Connection con2 = cm.getConnection();
    Statement stmt2 = cm.createStatement(con2);
    ResultSet rs2 = stmt2.executeQuery("balances");
    while (rs2.next()) {
    }
    con1.close();
    con2.close();
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = hetsep::ir::parse_program(PROGRAM)?;
    let spec = hetsep::easl::builtin::jdbc();

    // Panel (a) — the concrete configuration at the `while` (paper Fig. 5):
    // both connections' components fully materialized.
    let vanilla = translate(&program, &spec, &TranslateOptions::default())?;
    let concrete = states_at_line(&vanilla, 11, &EngineConfig::default());
    println!("== concrete configuration(s) at line 11 (cf. paper Fig. 5) ==\n");
    for s in &concrete {
        println!("{}", to_text(&s.clone(), &vanilla.vocab.table));
    }

    // Panel (b) — the heterogeneous abstract configuration (paper Fig. 7):
    // the subproblem for con2 keeps its component precise; con1's component
    // collapses.
    let strategy = parse_strategy(hetsep::strategy::builtin::JDBC_SINGLE)?;
    let options = TranslateOptions {
        stage: Some(strategy.stages[0].clone()),
        heterogeneous: true,
        ..TranslateOptions::default()
    };
    let inst = translate(&program, &spec, &options)?;
    let table = &inst.vocab.table;
    let states = states_at_line(&inst, 11, &EngineConfig::default());
    println!(
        "== heterogeneous abstract configurations at line 11 (cf. paper Fig. 7) ==\n\
         (showing blurred states of the subproblem where con2's component is chosen)\n"
    );
    let mut shown = 0;
    for s in &states {
        let blurred = canonical_key(&blur(s, table), table).into_structure();
        let text = to_text(&blurred, table);
        // Show configurations where the second connection is the chosen one.
        if text.contains("chosen[c]") && text.contains("con2") {
            println!("{text}");
            shown += 1;
            if shown >= 2 {
                break;
            }
        }
    }
    println!(
        "note: individuals of con1's component carry no chosen/relevant marks\n\
         and collapse into per-type summaries (the paper's `…=1/2` blob)."
    );

    // Where does the engine spend its effort verifying this heap? Run the
    // per-connection separation mode with a metrics sink and per-phase
    // wall-clock sampling (observation-only: results are unchanged).
    let mut sink = MetricsSink::new();
    let report = Verifier::new(&program, &spec)
        .mode(Mode::separation(strategy))
        .phase_timings(true)
        .sink(&mut sink)
        .run()?;
    println!(
        "\n== engine effort (per-connection separation, {} subproblem(s)) ==\n",
        report.subproblems.len()
    );
    for phase in Phase::ALL {
        let s = sink.phases().get(phase);
        println!(
            "  {:<7} {:>7} applications  {:>8.3} ms",
            phase.label(),
            s.count,
            s.nanos as f64 / 1e6
        );
    }
    Ok(())
}
