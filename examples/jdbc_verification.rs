//! The paper's running example (Fig. 1): a JDBC client whose second
//! `executeQuery` on a statement implicitly closes the previous ResultSet,
//! which is then used — the defect the paper opens with.
//!
//! ```sh
//! cargo run -p hetsep --example jdbc_verification
//! ```

use hetsep::core::{EngineConfig, Mode, Verifier};
use hetsep::strategy::builtin as strategies;

const FIG1: &str = r#"
program Fig1 uses JDBC;

void main() {
    ConnectionManager cm = new ConnectionManager();
    Connection con1 = cm.getConnection();
    Statement stmt1 = cm.createStatement(con1);
    ResultSet maxRs = stmt1.executeQuery("maxQry");
    if (maxRs.next()) {
    }
    ResultSet rs1 = stmt1.executeQuery("balancesQry");
    if (?) {
        stmt1.close();
    }
    Connection con2 = cm.getConnection();
    Statement stmt2 = cm.createStatement(con2);
    ResultSet rs2 = stmt2.executeQuery("balancesQry");
    ResultSet maxRs2 = stmt2.executeQuery("maxQry");
    if (maxRs2.next()) {
    }
    while (rs2.next()) {
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = hetsep::ir::parse_program(FIG1)?;
    let spec = hetsep::easl::builtin::jdbc();
    let config = EngineConfig::default();

    println!("== the paper's Fig. 1 defect ==");
    println!("line 18: rs2 = stmt2.executeQuery(..)  — implicitly closed by line 19");
    println!("line 22: while (rs2.next())            — uses the dead ResultSet\n");

    for (label, mode) in [
        ("vanilla", Mode::Vanilla),
        (
            "single-choice separation",
            Mode::separation(hetsep::strategy::parse_strategy(strategies::JDBC_SINGLE)?),
        ),
        (
            "multiple-choice separation",
            Mode::separation(hetsep::strategy::parse_strategy(strategies::JDBC_MULTI)?),
        ),
        (
            "incremental",
            Mode::incremental(hetsep::strategy::parse_strategy(
                strategies::JDBC_INCREMENTAL,
            )?),
        ),
    ] {
        let report = Verifier::new(&program, &spec)
            .mode(mode)
            .config(config.clone())
            .run()?;
        println!("{label}:");
        if report.errors.is_empty() {
            println!("  verified (no errors)");
        }
        for e in &report.errors {
            println!("  {e}");
        }
        println!(
            "  space {} structures, {} subproblem(s), {} visits, {:?}",
            report.max_space,
            report.subproblems.len(),
            report.total_visits,
            report.total_wall
        );
        println!();
    }
    Ok(())
}
